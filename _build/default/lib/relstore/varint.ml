let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

(* The "unsigned" codec operates on the int's 63-bit pattern ([lsr] is a
   logical shift), so zigzagged extremes like [min_int] — whose zigzag
   image has the top bit set — encode and decode losslessly. *)
let size_unsigned n =
  let rec go n acc = if n lsr 7 = 0 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let size_signed n = size_unsigned (zigzag n)

let write_unsigned buf n =
  let rec go n =
    if n lsr 7 = 0 then Buffer.add_char buf (Char.chr (n land 127))
    else begin
      Buffer.add_char buf (Char.chr (128 lor (n land 127)));
      go (n lsr 7)
    end
  in
  go n

let write_signed buf n = write_unsigned buf (zigzag n)

let read_unsigned s pos =
  let len = String.length s in
  let rec go shift acc =
    if !pos >= len then Errors.corrupt "varint: truncated at %d" !pos
    else if shift > 56 then
      (* A valid encoding covers the 63-bit pattern in at most 9 groups;
         a longer run of continuation bits is corruption, not data. *)
      Errors.corrupt "varint: overlong encoding at %d" !pos
    else begin
      let b = Char.code s.[!pos] in
      incr pos;
      let acc = acc lor ((b land 127) lsl shift) in
      if b < 128 then acc else go (shift + 7) acc
    end
  in
  go 0 0

let read_signed s pos = unzigzag (read_unsigned s pos)
