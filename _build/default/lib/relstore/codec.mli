(** Binary serialization for values, rows and strings.

    The format is deterministic: the same logical database always encodes
    to the same bytes, which makes storage-overhead measurements exact
    and reproducible. *)

val write_value : Buffer.t -> Value.t -> unit
val read_value : string -> int ref -> Value.t

val write_string : Buffer.t -> string -> unit
(** Length-prefixed. *)

val read_string : string -> int ref -> string

val write_row : Buffer.t -> Value.t array -> unit
(** Arity-prefixed sequence of values. *)

val read_row : string -> int ref -> Value.t array

val row_size : Value.t array -> int
(** Exact encoded byte length of {!write_row}'s output. *)
