(** LEB128-style variable-length integers with zigzag signing, shared by
    {!Codec} and the size-accounting paths. *)

val zigzag : int -> int
(** Map signed to unsigned: 0,-1,1,-2,2… -> 0,1,2,3,4… *)

val unzigzag : int -> int

val size_unsigned : int -> int
(** Encoded byte length of a non-negative integer. *)

val size_signed : int -> int
(** Encoded byte length after zigzag. *)

val write_unsigned : Buffer.t -> int -> unit
val write_signed : Buffer.t -> int -> unit

val read_unsigned : string -> int ref -> int
(** [read_unsigned s pos] decodes at [!pos], advancing [pos].  Raises
    {!Errors.Corrupt} on truncated input. *)

val read_signed : string -> int ref -> int
