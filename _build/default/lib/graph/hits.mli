(** Kleinberg's HITS over a node subset — the style of algorithm the
    paper cites for contextual history search (§2.1, [Kleinberg 99]). *)

type scores = { hub : (int, float) Hashtbl.t; authority : (int, float) Hashtbl.t }

val run :
  ?iterations:int ->
  ?epsilon:float ->
  ?subset:int list ->
  ('n, 'e) Digraph.t ->
  scores
(** Power iteration ([iterations] default 30) until the L1 change drops
    below [epsilon] (default 1e-8).  With [subset], only edges between
    subset members participate — the standard "focused subgraph" setup.
    Scores are normalized to unit L2 norm. *)

val top : scores -> [ `Hub | `Authority ] -> int -> (int * float) list
(** Highest-scoring nodes, descending; ties by ascending id. *)
