(** Budgeted breadth- and depth-first traversals.

    Every traversal takes an optional [budget] — a cap on the number of
    node expansions — because the paper's queries must be boundable to a
    fixed latency (§4).  Results report whether they were truncated. *)

type direction = Forward | Backward | Both

type 'a outcome = { visited : 'a; truncated : bool }

val bfs :
  ?direction:direction ->
  ?max_depth:int ->
  ?budget:int ->
  ?follow:(src:int -> dst:int -> 'e -> bool) ->
  ('n, 'e) Digraph.t ->
  roots:int list ->
  (int * int) list outcome
(** [(node, depth)] pairs in visit order, roots at depth 0.  [follow]
    filters which edges are traversed (default all).  Unknown roots are
    ignored. *)

val reachable :
  ?direction:direction ->
  ?max_depth:int ->
  ?budget:int ->
  ?follow:(src:int -> dst:int -> 'e -> bool) ->
  ('n, 'e) Digraph.t ->
  roots:int list ->
  unit outcome * (int, int) Hashtbl.t
(** Like {!bfs} but returns the depth table directly (node -> depth). *)

val ancestors :
  ?max_depth:int -> ?budget:int -> ('n, 'e) Digraph.t -> int -> (int * int) list outcome
(** BFS over in-edges, excluding the start node: the transitive sources
    this node was derived from, with distances. *)

val descendants :
  ?max_depth:int -> ?budget:int -> ('n, 'e) Digraph.t -> int -> (int * int) list outcome
(** BFS over out-edges, excluding the start node. *)

val dfs_postorder : ('n, 'e) Digraph.t -> roots:int list -> int list
(** Iterative postorder over out-edges; each reachable node once. *)
