type scores = { hub : (int, float) Hashtbl.t; authority : (int, float) Hashtbl.t }

let run ?(iterations = 30) ?(epsilon = 1e-8) ?subset g =
  let members =
    match subset with
    | None -> Digraph.nodes g
    | Some ids -> List.sort_uniq Int.compare (List.filter (Digraph.mem_node g) ids)
  in
  let in_set = Hashtbl.create (List.length members) in
  List.iter (fun id -> Hashtbl.replace in_set id ()) members;
  let hub = Hashtbl.create 64 and authority = Hashtbl.create 64 in
  List.iter
    (fun id ->
      Hashtbl.replace hub id 1.0;
      Hashtbl.replace authority id 1.0)
    members;
  let get tbl id = Option.value ~default:0.0 (Hashtbl.find_opt tbl id) in
  let normalize tbl =
    let norm =
      sqrt (Hashtbl.fold (fun _ v acc -> acc +. (v *. v)) tbl 0.0)
    in
    if norm > 0.0 then
      Hashtbl.iter (fun id v -> Hashtbl.replace tbl id (v /. norm)) (Hashtbl.copy tbl)
  in
  let step () =
    (* authority(v) = sum of hub(u) over in-neighbors u in the subset *)
    let delta = ref 0.0 in
    let new_auth =
      List.map
        (fun v ->
          let s =
            List.fold_left
              (fun acc (u, _) -> if Hashtbl.mem in_set u then acc +. get hub u else acc)
              0.0 (Digraph.in_edges g v)
          in
          (v, s))
        members
    in
    List.iter (fun (v, s) -> Hashtbl.replace authority v s) new_auth;
    normalize authority;
    let new_hub =
      List.map
        (fun v ->
          let s =
            List.fold_left
              (fun acc (w, _) ->
                if Hashtbl.mem in_set w then acc +. get authority w else acc)
              0.0 (Digraph.out_edges g v)
          in
          (v, s))
        members
    in
    List.iter
      (fun (v, s) ->
        delta := !delta +. Float.abs (s -. get hub v);
        Hashtbl.replace hub v s)
      new_hub;
    normalize hub;
    !delta
  in
  let rec iterate i =
    if i < iterations then begin
      let delta = step () in
      if delta > epsilon then iterate (i + 1)
    end
  in
  iterate 0;
  { hub; authority }

let top scores which n =
  let tbl = match which with `Hub -> scores.hub | `Authority -> scores.authority in
  let all = Hashtbl.fold (fun id v acc -> (id, v) :: acc) tbl [] in
  let sorted =
    List.sort
      (fun (ia, va) (ib, vb) ->
        let c = Float.compare vb va in
        if c <> 0 then c else Int.compare ia ib)
      all
  in
  List.filteri (fun i _ -> i < n) sorted
