type ('n, 'e) t = {
  payload : (int, 'n) Hashtbl.t;
  out_adj : (int, (int * 'e) list ref) Hashtbl.t;  (* stored reversed *)
  in_adj : (int, (int * 'e) list ref) Hashtbl.t;
  mutable edges : int;
}

let create ?(initial_capacity = 256) () =
  {
    payload = Hashtbl.create initial_capacity;
    out_adj = Hashtbl.create initial_capacity;
    in_adj = Hashtbl.create initial_capacity;
    edges = 0;
  }

let mem_node t id = Hashtbl.mem t.payload id
let node_opt t id = Hashtbl.find_opt t.payload id
let node t id = Hashtbl.find t.payload id
let add_node t id payload = Hashtbl.replace t.payload id payload

let adj tbl id =
  match Hashtbl.find_opt tbl id with
  | Some cell -> cell
  | None ->
    let cell = ref [] in
    Hashtbl.replace tbl id cell;
    cell

let add_edge t ~src ~dst label =
  if not (mem_node t src) then invalid_arg "Digraph.add_edge: unknown src";
  if not (mem_node t dst) then invalid_arg "Digraph.add_edge: unknown dst";
  let out = adj t.out_adj src in
  out := (dst, label) :: !out;
  let inc = adj t.in_adj dst in
  inc := (src, label) :: !inc;
  t.edges <- t.edges + 1

let edge_list tbl id =
  match Hashtbl.find_opt tbl id with
  | None -> []
  | Some cell -> List.rev !cell

let out_edges t id = edge_list t.out_adj id
let in_edges t id = edge_list t.in_adj id

let distinct_endpoints edges =
  List.sort_uniq Int.compare (List.map fst edges)

let succ t id = distinct_endpoints (out_edges t id)
let pred t id = distinct_endpoints (in_edges t id)

let degree tbl id =
  match Hashtbl.find_opt tbl id with None -> 0 | Some cell -> List.length !cell

let out_degree t id = degree t.out_adj id
let in_degree t id = degree t.in_adj id

let remove_node t id =
  if mem_node t id then begin
    (* Remove edges touching [id] from the opposite adjacency lists. *)
    let prune tbl other =
      match Hashtbl.find_opt tbl other with
      | None -> ()
      | Some cell -> cell := List.filter (fun (endpoint, _) -> endpoint <> id) !cell
    in
    let outs = out_edges t id and ins = in_edges t id in
    List.iter (fun (dst, _) -> prune t.in_adj dst) outs;
    List.iter (fun (src, _) -> prune t.out_adj src) ins;
    (* Self-loops appear in both lists but are single edges. *)
    let self = List.length (List.filter (fun (d, _) -> d = id) outs) in
    t.edges <- t.edges - (List.length outs + List.length ins - self);
    Hashtbl.remove t.out_adj id;
    Hashtbl.remove t.in_adj id;
    Hashtbl.remove t.payload id
  end

let node_count t = Hashtbl.length t.payload
let edge_count t = t.edges

let nodes t =
  List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.payload [])

let iter_nodes t f = Hashtbl.iter f t.payload
let fold_nodes t ~init ~f = Hashtbl.fold (fun id p acc -> f acc id p) t.payload init

let iter_edges t f =
  Hashtbl.iter (fun src cell -> List.iter (fun (dst, e) -> f src dst e) (List.rev !cell)) t.out_adj

let fold_edges t ~init ~f =
  Hashtbl.fold
    (fun src cell acc ->
      List.fold_left (fun acc (dst, e) -> f acc src dst e) acc (List.rev !cell))
    t.out_adj init

let filter_nodes t p =
  List.sort Int.compare
    (fold_nodes t ~init:[] ~f:(fun acc id payload ->
         if p id payload then id :: acc else acc))
