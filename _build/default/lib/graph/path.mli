(** Path queries: shortest paths and first-match ancestor searches —
    the engine behind "find the first ancestor of this file that the
    user is likely to recognize" (§2.4). *)

val shortest_path :
  ?direction:Traversal.direction ->
  ('n, 'e) Digraph.t ->
  src:int ->
  dst:int ->
  int list option
(** Node sequence from [src] to [dst] inclusive (unweighted BFS), or
    [None] when unreachable. *)

val distance :
  ?direction:Traversal.direction -> ('n, 'e) Digraph.t -> src:int -> dst:int -> int option

val first_matching_ancestor :
  ?max_depth:int ->
  ?budget:int ->
  ('n, 'e) Digraph.t ->
  start:int ->
  matches:(int -> bool) ->
  (int * int list) option
(** Breadth-first over in-edges from [start] (excluded); the nearest node
    satisfying [matches], with the path from [start] back to it.  Among
    equidistant matches the smallest node id wins, deterministically. *)

val all_paths :
  ?max_length:int -> ?max_paths:int -> ('n, 'e) Digraph.t -> src:int -> dst:int -> int list list
(** Simple (cycle-free) paths from [src] to [dst], each at most
    [max_length] edges (default 8), up to [max_paths] (default 100).
    Used by lineage explanations. *)
