let step direction g id =
  match (direction : Traversal.direction) with
  | Forward -> Digraph.succ g id
  | Backward -> Digraph.pred g id
  | Both -> List.sort_uniq Int.compare (Digraph.succ g id @ Digraph.pred g id)

let shortest_path ?(direction = Traversal.Forward) g ~src ~dst =
  if not (Digraph.mem_node g src && Digraph.mem_node g dst) then None
  else if src = dst then Some [ src ]
  else begin
    let parent = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.replace parent src src;
    Queue.push src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let current = Queue.pop queue in
      List.iter
        (fun next ->
          if not (Hashtbl.mem parent next) then begin
            Hashtbl.replace parent next current;
            if next = dst then found := true else Queue.push next queue
          end)
        (step direction g current)
    done;
    if not !found then None
    else begin
      let rec build acc id =
        if id = src then src :: acc else build (id :: acc) (Hashtbl.find parent id)
      in
      Some (build [] dst)
    end
  end

let distance ?direction g ~src ~dst =
  Option.map (fun p -> List.length p - 1) (shortest_path ?direction g ~src ~dst)

let first_matching_ancestor ?max_depth ?budget g ~start ~matches =
  let result = Traversal.ancestors ?max_depth ?budget g start in
  (* Visits are in BFS order; among a depth tie pick the smallest id. *)
  let rec scan best_depth best = function
    | [] -> best
    | (id, d) :: rest -> begin
      match best with
      | Some _ when d > best_depth -> best
      | _ ->
        if matches id then begin
          match best with
          | Some (bid, _) when bid < id -> scan best_depth best rest
          | _ -> scan d (Some (id, d)) rest
        end
        else scan best_depth best rest
    end
  in
  match scan max_int None result.Traversal.visited with
  | None -> None
  | Some (id, _) -> begin
    match shortest_path ~direction:Traversal.Backward g ~src:start ~dst:id with
    | None -> None
    | Some path -> Some (id, path)
  end

let all_paths ?(max_length = 8) ?(max_paths = 100) g ~src ~dst =
  if not (Digraph.mem_node g src && Digraph.mem_node g dst) then []
  else begin
    let paths = ref [] in
    let count = ref 0 in
    let rec explore node trail len =
      if !count < max_paths then
        if node = dst then begin
          paths := List.rev (node :: trail) :: !paths;
          incr count
        end
        else if len < max_length then
          List.iter
            (fun next ->
              if not (List.mem next trail) && next <> node then
                explore next (node :: trail) (len + 1))
            (Digraph.succ g node)
    in
    explore src [] 0;
    List.rev !paths
  end
