lib/graph/cycle.ml: Digraph Hashtbl Int List Set Stack Traversal
