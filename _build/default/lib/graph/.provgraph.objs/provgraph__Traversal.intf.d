lib/graph/traversal.mli: Digraph Hashtbl
