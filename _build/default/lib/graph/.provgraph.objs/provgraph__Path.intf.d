lib/graph/path.mli: Digraph Traversal
