lib/graph/neighborhood.mli: Digraph Hashtbl Traversal
