lib/graph/digraph.mli:
