lib/graph/pagerank.mli: Digraph Hashtbl
