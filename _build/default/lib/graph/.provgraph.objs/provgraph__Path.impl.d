lib/graph/path.ml: Digraph Hashtbl Int List Option Queue Traversal
