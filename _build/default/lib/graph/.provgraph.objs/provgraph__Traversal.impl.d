lib/graph/traversal.ml: Digraph Hashtbl Int List Queue Stack
