lib/graph/hits.mli: Digraph Hashtbl
