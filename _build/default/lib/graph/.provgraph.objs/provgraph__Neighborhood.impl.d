lib/graph/neighborhood.ml: Digraph Float Hashtbl Int List Option Queue Traversal
