lib/graph/hits.ml: Digraph Float Hashtbl Int List Option
