lib/graph/pagerank.ml: Digraph Float Hashtbl Int List Option
