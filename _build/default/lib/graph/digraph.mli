(** A directed multigraph over integer node ids, with polymorphic node
    and edge payloads and O(1) access to both out- and in-adjacency.

    This is the in-memory representation every provenance query runs
    against; the relational store persists it, this module traverses
    it. *)

type ('n, 'e) t

val create : ?initial_capacity:int -> unit -> ('n, 'e) t

val add_node : ('n, 'e) t -> int -> 'n -> unit
(** Insert or replace a node's payload.  Replacement keeps edges. *)

val mem_node : ('n, 'e) t -> int -> bool

val node : ('n, 'e) t -> int -> 'n
(** Raises [Not_found]. *)

val node_opt : ('n, 'e) t -> int -> 'n option

val remove_node : ('n, 'e) t -> int -> unit
(** Removes the node and every incident edge.  No-op on unknown ids. *)

val add_edge : ('n, 'e) t -> src:int -> dst:int -> 'e -> unit
(** Multi-edges are allowed (two visits across the same link are two
    edges).  Both endpoints must exist; raises [Invalid_argument]
    otherwise. *)

val out_edges : ('n, 'e) t -> int -> (int * 'e) list
(** [(dst, label)] pairs, most recently added last.  Empty for unknown
    nodes. *)

val in_edges : ('n, 'e) t -> int -> (int * 'e) list
(** [(src, label)] pairs. *)

val succ : ('n, 'e) t -> int -> int list
(** Distinct successors, ascending. *)

val pred : ('n, 'e) t -> int -> int list
(** Distinct predecessors, ascending. *)

val out_degree : ('n, 'e) t -> int -> int
(** Number of out-edges (multi-edges counted). *)

val in_degree : ('n, 'e) t -> int -> int

val node_count : ('n, 'e) t -> int
val edge_count : ('n, 'e) t -> int

val nodes : ('n, 'e) t -> int list
(** Ascending. *)

val iter_nodes : ('n, 'e) t -> (int -> 'n -> unit) -> unit
val fold_nodes : ('n, 'e) t -> init:'a -> f:('a -> int -> 'n -> 'a) -> 'a
val iter_edges : ('n, 'e) t -> (int -> int -> 'e -> unit) -> unit
val fold_edges : ('n, 'e) t -> init:'a -> f:('a -> int -> int -> 'e -> 'a) -> 'a

val filter_nodes : ('n, 'e) t -> (int -> 'n -> bool) -> int list
