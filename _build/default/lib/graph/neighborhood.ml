type config = {
  decay : float;
  max_hops : int;
  direction : Traversal.direction;
  edge_weight : float;
  node_budget : int option;
  degree_normalize : bool;
}

let default_config =
  {
    decay = 0.5;
    max_hops = 2;
    direction = Traversal.Both;
    edge_weight = 1.0;
    node_budget = None;
    degree_normalize = false;
  }

let neighbors direction g id =
  match (direction : Traversal.direction) with
  | Traversal.Forward -> Digraph.out_edges g id
  | Traversal.Backward -> Digraph.in_edges g id
  | Traversal.Both -> Digraph.out_edges g id @ Digraph.in_edges g id

let expand ?(config = default_config) ?follow g ~seeds =
  let scores = Hashtbl.create 128 in
  let bump id v =
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt scores id) in
    Hashtbl.replace scores id (prev +. v)
  in
  let keep src dst e = match follow with None -> true | Some f -> f ~src ~dst e in
  (* Per-seed BFS keeps "shortest hop from this seed" semantics additive
     across seeds.  Seeds are few (top-k text hits), so this stays cheap. *)
  let truncated = ref false in
  let expansions = ref 0 in
  let budget_ok () =
    match config.node_budget with
    | None -> true
    | Some b -> if !expansions >= b then (truncated := true; false) else true
  in
  List.iter
    (fun (seed, seed_score) ->
      if Digraph.mem_node g seed && seed_score > 0.0 then begin
        bump seed seed_score;
        let depth = Hashtbl.create 32 in
        (* In flow mode [received] is the mass that reached each node
           along its BFS discovery; it is what the node splits among its
           own neighbors. *)
        let received = Hashtbl.create 32 in
        Hashtbl.replace depth seed 0;
        Hashtbl.replace received seed seed_score;
        let queue = Queue.create () in
        Queue.push seed queue;
        let continue = ref true in
        while !continue && not (Queue.is_empty queue) do
          if not (budget_ok ()) then continue := false
          else begin
            let current = Queue.pop queue in
            incr expansions;
            let d = Hashtbl.find depth current in
            if d < config.max_hops then begin
              let nbrs =
                List.filter
                  (fun (next, e) -> keep current next e)
                  (neighbors config.direction g current)
              in
              let fanout = float_of_int (max 1 (List.length nbrs)) in
              List.iter
                (fun (next, _) ->
                  if not (Hashtbl.mem depth next) then begin
                    let hop = d + 1 in
                    Hashtbl.replace depth next hop;
                    let mass =
                      if config.degree_normalize then
                        Hashtbl.find received current *. config.decay
                        *. config.edge_weight /. fanout
                      else
                        seed_score
                        *. Float.pow config.decay (float_of_int hop)
                        *. Float.pow config.edge_weight (float_of_int hop)
                    in
                    Hashtbl.replace received next mass;
                    bump next mass;
                    Queue.push next queue
                  end)
                nbrs
            end
          end
        done
      end)
    seeds;
  (scores, !truncated)

let ranked scores =
  let all = Hashtbl.fold (fun id v acc -> (id, v) :: acc) scores [] in
  List.sort
    (fun (ia, va) (ib, vb) ->
      let c = Float.compare vb va in
      if c <> 0 then c else Int.compare ia ib)
    all
