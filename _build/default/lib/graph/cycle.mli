(** Cycle detection and topological ordering.

    Provenance is acyclic by definition (§3.1); these checks verify that
    the versioning schemes in [Core.Versioning] actually deliver a DAG,
    and power the property tests. *)

val has_cycle : ('n, 'e) Digraph.t -> bool

val find_cycle : ('n, 'e) Digraph.t -> int list option
(** Some witness cycle as a node sequence [v0; ...; vk] with an edge
    vk -> v0, or [None] for a DAG. *)

val topological_sort : ('n, 'e) Digraph.t -> int list option
(** Kahn's algorithm; [None] when the graph has a cycle.  Deterministic:
    ties resolved by ascending node id. *)

val strongly_connected_components : ('n, 'e) Digraph.t -> int list list
(** Tarjan's SCCs; singleton components without self-loops are the
    trivial ones.  Each component sorted ascending; components in
    reverse topological order of the condensation. *)
