(** PageRank with optional personalization — the "interesting graph
    algorithms browsers do not apply" family (§3); personalized restart
    vectors model a user's own attention rather than global popularity. *)

val run :
  ?damping:float ->
  ?iterations:int ->
  ?epsilon:float ->
  ?personalization:(int * float) list ->
  ('n, 'e) Digraph.t ->
  (int, float) Hashtbl.t
(** [damping] defaults to 0.85, [iterations] to 50, [epsilon] (L1
    convergence) to 1e-10.  [personalization] is a restart distribution
    (weights are normalized; default uniform).  Dangling mass is
    redistributed through the restart vector.  Result sums to 1. *)

val top : (int, float) Hashtbl.t -> int -> (int * float) list
