(** Decayed neighborhood expansion.

    This is the Shah et al. mechanism the paper adopts for contextual
    history search (§2.1): start from textually relevant seed nodes with
    their text scores, spread relevance to provenance neighbors with a
    per-hop decay, and re-rank by combined score. *)

type config = {
  decay : float;  (** per-hop multiplier, in (0, 1\]; default 0.5 *)
  max_hops : int;  (** expansion radius; default 2 *)
  direction : Traversal.direction;  (** default [Both] *)
  edge_weight : float;  (** weight applied per traversed edge; default 1.0 *)
  node_budget : int option;  (** cap on expanded nodes; None = unbounded *)
  degree_normalize : bool;
      (** flow semantics: a node splits its received mass among its
          neighbors (random-walk style), so high-degree hubs do not
          amplify relevance.  Off (default), mass depends only on hop
          distance: a node at hop h receives [seed *. decay^h] per
          seed. *)
}

val default_config : config

val expand :
  ?config:config ->
  ?follow:(src:int -> dst:int -> 'e -> bool) ->
  ('n, 'e) Digraph.t ->
  seeds:(int * float) list ->
  (int, float) Hashtbl.t * bool
(** Propagate seed mass outward: a node at hop [h] from a seed with score
    [s] receives [s *. decay^h *. edge_weight^h], summed over seeds and
    shortest hops.  Returns the score table and a truncation flag (true
    when the node budget stopped expansion). *)

val ranked : (int, float) Hashtbl.t -> (int * float) list
(** Descending scores, ties by ascending id. *)
