let run ?(damping = 0.85) ?(iterations = 50) ?(epsilon = 1e-10) ?personalization g =
  let nodes = Digraph.nodes g in
  let n = List.length nodes in
  if n = 0 then Hashtbl.create 1
  else begin
    let restart = Hashtbl.create n in
    (match personalization with
    | None ->
      let u = 1.0 /. float_of_int n in
      List.iter (fun id -> Hashtbl.replace restart id u) nodes
    | Some weights ->
      let valid = List.filter (fun (id, w) -> Digraph.mem_node g id && w > 0.0) weights in
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 valid in
      if total <= 0.0 then begin
        let u = 1.0 /. float_of_int n in
        List.iter (fun id -> Hashtbl.replace restart id u) nodes
      end
      else
        List.iter (fun (id, w) ->
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt restart id) in
            Hashtbl.replace restart id (prev +. (w /. total)))
          valid);
    let restart_of id = Option.value ~default:0.0 (Hashtbl.find_opt restart id) in
    let rank = Hashtbl.create n in
    List.iter (fun id -> Hashtbl.replace rank id (restart_of id)) nodes;
    let get tbl id = Option.value ~default:0.0 (Hashtbl.find_opt tbl id) in
    let rec iterate i =
      if i < iterations then begin
        let next = Hashtbl.create n in
        (* Dangling nodes donate their mass to the restart vector. *)
        let dangling =
          List.fold_left
            (fun acc id -> if Digraph.out_degree g id = 0 then acc +. get rank id else acc)
            0.0 nodes
        in
        List.iter
          (fun id ->
            let flow =
              List.fold_left
                (fun acc (src, _) ->
                  let deg = Digraph.out_degree g src in
                  if deg > 0 then acc +. (get rank src /. float_of_int deg) else acc)
                0.0 (Digraph.in_edges g id)
            in
            let r = restart_of id in
            Hashtbl.replace next id
              (((1.0 -. damping) *. r) +. (damping *. (flow +. (dangling *. r)))))
          nodes;
        let delta =
          List.fold_left
            (fun acc id -> acc +. Float.abs (get next id -. get rank id))
            0.0 nodes
        in
        Hashtbl.reset rank;
        Hashtbl.iter (fun id v -> Hashtbl.replace rank id v) next;
        if delta > epsilon then iterate (i + 1)
      end
    in
    iterate 0;
    rank
  end

let top rank n =
  let all = Hashtbl.fold (fun id v acc -> (id, v) :: acc) rank [] in
  let sorted =
    List.sort
      (fun (ia, va) (ib, vb) ->
        let c = Float.compare vb va in
        if c <> 0 then c else Int.compare ia ib)
      all
  in
  List.filteri (fun i _ -> i < n) sorted
