type direction = Forward | Backward | Both

type 'a outcome = { visited : 'a; truncated : bool }

let neighbors direction g id =
  match direction with
  | Forward -> Digraph.out_edges g id
  | Backward -> Digraph.in_edges g id
  | Both -> Digraph.out_edges g id @ Digraph.in_edges g id

(* [follow] receives traversal endpoints oriented src=expanded node,
   dst=candidate, regardless of edge direction. *)
let bfs ?(direction = Forward) ?max_depth ?budget ?follow g ~roots =
  let depth = Hashtbl.create 64 in
  let queue = Queue.create () in
  let order = ref [] in
  let truncated = ref false in
  let expansions = ref 0 in
  let within_budget () =
    match budget with
    | None -> true
    | Some b -> if !expansions >= b then (truncated := true; false) else true
  in
  let within_depth d =
    match max_depth with
    | None -> true
    | Some m -> if d >= m then (truncated := true; false) else true
  in
  List.iter
    (fun root ->
      if Digraph.mem_node g root && not (Hashtbl.mem depth root) then begin
        Hashtbl.replace depth root 0;
        Queue.push root queue;
        order := (root, 0) :: !order
      end)
    roots;
  let keep_edge src dst e =
    match follow with None -> true | Some f -> f ~src ~dst e
  in
  let continue = ref true in
  while !continue && not (Queue.is_empty queue) do
    if not (within_budget ()) then continue := false
    else begin
      let current = Queue.pop queue in
      incr expansions;
      let d = Hashtbl.find depth current in
      if within_depth d then
        List.iter
          (fun (next, e) ->
            if (not (Hashtbl.mem depth next)) && keep_edge current next e then begin
              Hashtbl.replace depth next (d + 1);
              Queue.push next queue;
              order := (next, d + 1) :: !order
            end)
          (neighbors direction g current)
    end
  done;
  { visited = List.rev !order; truncated = !truncated }

let reachable ?direction ?max_depth ?budget ?follow g ~roots =
  let result = bfs ?direction ?max_depth ?budget ?follow g ~roots in
  let depth = Hashtbl.create 64 in
  List.iter (fun (id, d) -> Hashtbl.replace depth id d) result.visited;
  ({ visited = (); truncated = result.truncated }, depth)

let without_roots roots outcome =
  let root_set = List.sort_uniq Int.compare roots in
  {
    outcome with
    visited =
      List.filter (fun (id, _) -> not (List.mem id root_set)) outcome.visited;
  }

let ancestors ?max_depth ?budget g id =
  without_roots [ id ] (bfs ~direction:Backward ?max_depth ?budget g ~roots:[ id ])

let descendants ?max_depth ?budget g id =
  without_roots [ id ] (bfs ~direction:Forward ?max_depth ?budget g ~roots:[ id ])

let dfs_postorder g ~roots =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  (* Explicit stack with an expansion marker for iterative postorder. *)
  let stack = Stack.create () in
  List.iter
    (fun root -> if Digraph.mem_node g root then Stack.push (`Enter root) stack)
    roots;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Exit id -> order := id :: !order
    | `Enter id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        Stack.push (`Exit id) stack;
        List.iter
          (fun next ->
            if not (Hashtbl.mem visited next) then Stack.push (`Enter next) stack)
          (Digraph.succ g id)
      end
  done;
  List.rev !order
