(* Iterative three-color DFS; recursion would overflow on 100k-node
   histories. *)
let find_cycle g =
  let color = Hashtbl.create 64 in
  (* 1 = on stack (gray), 2 = done (black) *)
  let cycle = ref None in
  let parent = Hashtbl.create 64 in
  let rec process (stack : [ `Enter of int * int option | `Exit of int ] list) =
    match stack with
    | [] -> ()
    | _ when !cycle <> None -> ()
    | `Exit id :: rest ->
      Hashtbl.replace color id 2;
      process rest
    | `Enter (id, from) :: rest -> begin
      match Hashtbl.find_opt color id with
      | Some 1 ->
        (* Gray hit: reconstruct the cycle from [from] back to [id]. *)
        let rec build acc v = if v = id then v :: acc else build (v :: acc) (Hashtbl.find parent v) in
        let witness = match from with None -> [ id ] | Some f -> build [] f in
        cycle := Some witness;
        ()
      | Some _ -> process rest
      | None ->
        Hashtbl.replace color id 1;
        (match from with None -> () | Some f -> Hashtbl.replace parent id f);
        let children =
          List.map (fun next -> `Enter (next, Some id)) (Digraph.succ g id)
        in
        process (children @ (`Exit id :: rest))
    end
  in
  List.iter
    (fun id -> if not (Hashtbl.mem color id) then process [ `Enter (id, None) ])
    (Digraph.nodes g);
  !cycle

let has_cycle g = find_cycle g <> None

let topological_sort g =
  let indeg = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace indeg id (Digraph.in_degree g id)) (Digraph.nodes g);
  (* Min-heap behaviour via a sorted module; history graphs are small
     enough that a Set works well and keeps determinism trivial. *)
  let module Iset = Set.Make (Int) in
  let ready =
    List.fold_left
      (fun acc id -> if Hashtbl.find indeg id = 0 then Iset.add id acc else acc)
      Iset.empty (Digraph.nodes g)
  in
  let rec drain ready acc count =
    match Iset.min_elt_opt ready with
    | None -> (List.rev acc, count)
    | Some id ->
      let ready = Iset.remove id ready in
      let ready =
        List.fold_left
          (fun ready next ->
            (* Multi-edges decrement once per edge. *)
            let dec =
              List.length (List.filter (fun (d, _) -> d = next) (Digraph.out_edges g id))
            in
            let remaining = Hashtbl.find indeg next - dec in
            Hashtbl.replace indeg next remaining;
            if remaining = 0 then Iset.add next ready else ready)
          ready (Digraph.succ g id)
      in
      drain ready (id :: acc) (count + 1)
  in
  let order, count = drain ready [] 0 in
  if count = Digraph.node_count g then Some order else None

(* Kosaraju with iterative DFS passes; safe on deep navigation chains. *)
let strongly_connected_components g =
  let postorder = Traversal.dfs_postorder g ~roots:(Digraph.nodes g) in
  let assigned = Hashtbl.create 64 in
  let components = ref [] in
  let collect root =
    (* Iterative DFS over in-edges (the transpose). *)
    let members = ref [] in
    let stack = Stack.create () in
    Stack.push root stack;
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      if not (Hashtbl.mem assigned v) then begin
        Hashtbl.replace assigned v ();
        members := v :: !members;
        List.iter
          (fun w -> if not (Hashtbl.mem assigned w) then Stack.push w stack)
          (Digraph.pred g v)
      end
    done;
    List.sort Int.compare !members
  in
  List.iter
    (fun v -> if not (Hashtbl.mem assigned v) then components := collect v :: !components)
    (List.rev postorder);
  List.rev !components
