module Prng = Provkit_util.Prng

type config = {
  n_topics : int;
  sites_per_topic : int;
  articles_per_site : int;
  vocab_size : int;
  title_terms : int;
  body_terms : int;
  links_per_article : int;
  cross_topic_link_prob : float;
  redirect_pages_per_topic : int;
  images_per_site : int;
  max_embeds_per_article : int;
  download_hosts_per_topic : int;
  files_per_download_host : int;
  ambiguous_terms : int;
}

let default_config =
  {
    n_topics = 12;
    sites_per_topic = 6;
    articles_per_site = 10;
    vocab_size = 120;
    title_terms = 4;
    body_terms = 30;
    links_per_article = 6;
    cross_topic_link_prob = 0.08;
    redirect_pages_per_topic = 4;
    images_per_site = 3;
    max_embeds_per_article = 2;
    download_hosts_per_topic = 1;
    files_per_download_host = 5;
    ambiguous_terms = 3;
  }

type ambiguity = {
  term : string;
  topic_a : int;
  topic_b : int;
  pages_a : int list;
  pages_b : int list;
}

type t = {
  config : config;
  topics : Topic.t array;
  mutable pages : Page_content.t array;
  by_url : (string, int) Hashtbl.t;
  per_topic_pages : int list array;  (* navigable, ascending *)
  per_topic_hubs : int list array;
  per_topic_files : int list array;
  all_download_hosts : int list;
  ambiguity_list : ambiguity list;
}

(* Words that are naturally ambiguous across domains; the first is the
   paper's own example. *)
let ambiguous_palette =
  [| "rosebud"; "mercury"; "jaguar"; "phoenix"; "delta"; "apollo"; "orion"; "titan"; "atlas"; "polaris" |]

let topic_name i =
  let base = Topic.default_names.(i mod Array.length Topic.default_names) in
  if i < Array.length Topic.default_names then base
  else Printf.sprintf "%s%d" base (i / Array.length Topic.default_names)

(* A growable page store with ids assigned on append. *)
module Builder = struct
  type b = { mutable items : Page_content.t list; mutable count : int }

  let create () = { items = []; count = 0 }

  let append b ~url ~title ~body ~topic ~kind ?redirect_to () =
    let id = b.count in
    let page : Page_content.t =
      { id; url; title; body; topic; kind; links = [||]; redirect_to; embeds = [||] }
    in
    b.items <- page :: b.items;
    b.count <- id + 1;
    id

  let to_array b = Array.of_list (List.rev b.items)
end

let generate ?(config = default_config) ~seed () =
  let cfg = config in
  assert (cfg.n_topics >= 1 && cfg.sites_per_topic >= 1 && cfg.articles_per_site >= 1);
  let rng = Prng.create seed in
  let topic_rng = Prng.split rng in
  let link_rng = Prng.split rng in
  let content_rng = Prng.split rng in
  let topics =
    Array.init cfg.n_topics (fun i ->
        Topic.generate ~rng:topic_rng ~id:i ~name:(topic_name i)
          ~vocab_size:cfg.vocab_size)
  in
  let b = Builder.create () in
  let per_topic_articles = Array.make cfg.n_topics [] in
  let per_topic_hubs = Array.make cfg.n_topics [] in
  let per_topic_images = Array.make cfg.n_topics [] in
  let per_topic_redirects = Array.make cfg.n_topics [] in
  let per_topic_download_hosts = Array.make cfg.n_topics [] in
  let per_topic_files = Array.make cfg.n_topics [] in
  let site_articles : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
  let site_images : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
  let site_hub : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  (* Phase 1: page skeletons. *)
  for ti = 0 to cfg.n_topics - 1 do
    let topic = topics.(ti) in
    let tname = Topic.name topic in
    for si = 0 to cfg.sites_per_topic - 1 do
      let host = Printf.sprintf "site%d.%s.example" si tname in
      let hub_id =
        Builder.append b
          ~url:(Url.make ~path:[ "index" ] host)
          ~title:(Printf.sprintf "%s portal %s" tname (Topic.sample_term topic content_rng))
          ~body:(Topic.sample_terms topic content_rng cfg.body_terms)
          ~topic:ti ~kind:Page_content.Hub ()
      in
      per_topic_hubs.(ti) <- hub_id :: per_topic_hubs.(ti);
      Hashtbl.replace site_hub (ti, si) hub_id;
      let articles = ref [] in
      for ai = 0 to cfg.articles_per_site - 1 do
        let title =
          String.concat " " (Topic.sample_terms topic content_rng cfg.title_terms)
        in
        let id =
          Builder.append b
            ~url:(Url.make ~path:[ "articles"; Printf.sprintf "a%d" ai ] host)
            ~title
            ~body:(Topic.sample_terms topic content_rng cfg.body_terms)
            ~topic:ti ~kind:Page_content.Article ()
        in
        articles := id :: !articles;
        per_topic_articles.(ti) <- id :: per_topic_articles.(ti)
      done;
      Hashtbl.replace site_articles (ti, si) (List.rev !articles);
      let images = ref [] in
      for ii = 0 to cfg.images_per_site - 1 do
        let id =
          Builder.append b
            ~url:(Url.make ~path:[ "img"; Printf.sprintf "i%d.jpg" ii ] host)
            ~title:(Printf.sprintf "%s image %d" tname ii)
            ~body:[] ~topic:ti ~kind:Page_content.Image ()
        in
        images := id :: !images;
        per_topic_images.(ti) <- id :: per_topic_images.(ti)
      done;
      Hashtbl.replace site_images (ti, si) (List.rev !images)
    done;
    (* Download hosts and their files. *)
    for di = 0 to cfg.download_hosts_per_topic - 1 do
      let host = Printf.sprintf "files%d.%s.example" di tname in
      let host_id =
        Builder.append b
          ~url:(Url.make ~path:[ "downloads" ] host)
          ~title:(Printf.sprintf "%s downloads %s" tname (Topic.sample_term topic content_rng))
          ~body:(Topic.sample_terms topic content_rng (cfg.body_terms / 2))
          ~topic:ti ~kind:Page_content.Download_host ()
      in
      per_topic_download_hosts.(ti) <- host_id :: per_topic_download_hosts.(ti);
      for fi = 0 to cfg.files_per_download_host - 1 do
        let stem = Topic.sample_term topic content_rng in
        let fid =
          Builder.append b
            ~url:(Url.make ~path:[ "files"; Printf.sprintf "%s-%d.zip" stem fi ] host)
            ~title:(Printf.sprintf "%s archive %d" stem fi)
            ~body:[] ~topic:ti ~kind:Page_content.File ()
        in
        per_topic_files.(ti) <- fid :: per_topic_files.(ti)
      done
    done
  done;
  (* Phase 2: redirect pages (targets chosen among existing articles). *)
  for ti = 0 to cfg.n_topics - 1 do
    let tname = Topic.name topics.(ti) in
    let articles = Array.of_list per_topic_articles.(ti) in
    for ri = 0 to cfg.redirect_pages_per_topic - 1 do
      if Array.length articles > 0 then begin
        let target = Prng.pick link_rng articles in
        let id =
          Builder.append b
            ~url:(Url.make
                    ~path:[ "track"; Printf.sprintf "r%d" ri ]
                    ~query:[ ("id", Printf.sprintf "%06x" (Prng.int link_rng 0xffffff)) ]
                    (Printf.sprintf "redir.%s.example" tname))
            ~title:"" ~body:[] ~topic:ti ~kind:Page_content.Redirect
            ~redirect_to:target ()
        in
        per_topic_redirects.(ti) <- id :: per_topic_redirects.(ti)
      end
    done
  done;
  let pages = Builder.to_array b in
  (* Phase 3: link structure. *)
  let pick_same_topic ti =
    let articles = Array.of_list per_topic_articles.(ti) in
    let hubs = Array.of_list per_topic_hubs.(ti) in
    (* Mild preferential attachment: 35% of intra-topic links go to hubs,
       which concentrates in-degree the way real sites do. *)
    if Array.length hubs > 0 && Prng.bernoulli link_rng 0.35 then Prng.pick link_rng hubs
    else Prng.pick link_rng articles
  in
  let pick_target ti =
    if cfg.n_topics > 1 && Prng.bernoulli link_rng cfg.cross_topic_link_prob then begin
      let other = (ti + 1 + Prng.int link_rng (cfg.n_topics - 1)) mod cfg.n_topics in
      pick_same_topic other
    end
    else pick_same_topic ti
  in
  let with_links id links embeds =
    let p = pages.(id) in
    pages.(id) <- { p with Page_content.links = Array.of_list links; embeds = Array.of_list embeds }
  in
  for ti = 0 to cfg.n_topics - 1 do
    let redirects = Array.of_list per_topic_redirects.(ti) in
    let download_hosts = Array.of_list per_topic_download_hosts.(ti) in
    for si = 0 to cfg.sites_per_topic - 1 do
      let articles = Hashtbl.find site_articles (ti, si) in
      let images = Array.of_list (Hashtbl.find site_images (ti, si)) in
      (* Hub: all site articles + another same-topic hub + one download host. *)
      let hub = Hashtbl.find site_hub (ti, si) in
      let other_hubs =
        List.filter (fun h -> h <> hub) per_topic_hubs.(ti)
      in
      let hub_links =
        articles
        @ (match other_hubs with [] -> [] | h :: _ -> [ h ])
        @ (if Array.length download_hosts > 0 then [ download_hosts.(0) ] else [])
      in
      with_links hub hub_links [];
      List.iter
        (fun aid ->
          let n = cfg.links_per_article in
          let raw = List.init n (fun _ -> pick_target ti) in
          (* Route some links through tracking redirects, and make sure
             download hosts are reachable from ordinary browsing. *)
          let routed =
            List.map
              (fun target ->
                if Array.length redirects > 0 && Prng.bernoulli link_rng 0.10 then
                  Prng.pick link_rng redirects
                else if Array.length download_hosts > 0 && Prng.bernoulli link_rng 0.08
                then Prng.pick link_rng download_hosts
                else target)
              raw
          in
          let dedup = List.sort_uniq Int.compare (List.filter (fun l -> l <> aid) routed) in
          let n_embeds =
            if Array.length images = 0 then 0 else Prng.int link_rng (cfg.max_embeds_per_article + 1)
          in
          let embeds =
            Prng.sample_without_replacement link_rng n_embeds images
          in
          with_links aid dedup embeds)
        articles
    done;
    (* Download hosts link to their files. *)
    List.iter
      (fun hid ->
        let host = pages.(hid).Page_content.url.Url.host in
        let files =
          List.filter (fun fid -> pages.(fid).Page_content.url.Url.host = host) per_topic_files.(ti)
        in
        with_links hid (List.sort Int.compare files) [])
      per_topic_download_hosts.(ti)
  done;
  (* Phase 4: planted ambiguous terms. *)
  let ambiguity_list = ref [] in
  let plant_count = 4 in
  for i = 0 to cfg.ambiguous_terms - 1 do
    if cfg.n_topics >= 2 then begin
      let base = ambiguous_palette.(i mod Array.length ambiguous_palette) in
      let term = if i < Array.length ambiguous_palette then base else Printf.sprintf "%s%d" base i in
      let topic_a = 2 * i mod cfg.n_topics in
      let topic_b = ((2 * i) + 1) mod cfg.n_topics in
      if topic_a <> topic_b then begin
        let plant ti =
          let articles = Array.of_list per_topic_articles.(ti) in
          let chosen =
            Prng.sample_without_replacement content_rng plant_count articles
          in
          List.iter
            (fun pid ->
              let p = pages.(pid) in
              pages.(pid) <-
                {
                  p with
                  Page_content.title = term ^ " " ^ p.Page_content.title;
                  body = term :: term :: p.Page_content.body;
                })
            chosen;
          Topic.add_term topics.(ti) term;
          List.sort Int.compare chosen
        in
        let pages_a = plant topic_a in
        let pages_b = plant topic_b in
        ambiguity_list := { term; topic_a; topic_b; pages_a; pages_b } :: !ambiguity_list
      end
    end
  done;
  let by_url = Hashtbl.create (Array.length pages) in
  Array.iter
    (fun (p : Page_content.t) ->
      Hashtbl.replace by_url (Url.to_string (Url.normalize p.Page_content.url)) p.Page_content.id)
    pages;
  let navigable ti =
    List.sort Int.compare
      (per_topic_hubs.(ti) @ per_topic_articles.(ti) @ per_topic_download_hosts.(ti))
  in
  {
    config = cfg;
    topics;
    pages;
    by_url;
    per_topic_pages = Array.init cfg.n_topics navigable;
    per_topic_hubs = Array.map (List.sort Int.compare) (Array.map (fun l -> l) per_topic_hubs);
    per_topic_files = Array.map (List.sort Int.compare) (Array.map (fun l -> l) per_topic_files);
    all_download_hosts =
      List.sort Int.compare (Array.to_list per_topic_download_hosts |> List.concat);
    ambiguity_list = List.rev !ambiguity_list;
  }

let config t = t.config
let page_count t = Array.length t.pages

let page t id =
  if id < 0 || id >= Array.length t.pages then
    invalid_arg (Printf.sprintf "Web_graph.page: id %d out of range" id)
  else t.pages.(id)

let pages t = t.pages
let topic_count t = Array.length t.topics
let topic t i = t.topics.(i)

let find_by_url t url =
  Hashtbl.find_opt t.by_url (Url.to_string (Url.normalize url))

let pages_of_topic t ti = t.per_topic_pages.(ti)
let hubs_of_topic t ti = t.per_topic_hubs.(ti)
let files_of_topic t ti = t.per_topic_files.(ti)
let download_hosts t = t.all_download_hosts
let ambiguities t = t.ambiguity_list

let resolve_redirects t id =
  let rec follow acc id =
    let p = page t id in
    match p.Page_content.redirect_to with
    | Some next when not (List.mem next acc) -> follow (id :: acc) next
    | _ -> List.rev (id :: acc)
  in
  follow [] id
