type kind = Article | Hub | Redirect | Image | Download_host | File

type t = {
  id : int;
  url : Url.t;
  title : string;
  body : string list;
  topic : int;
  kind : kind;
  links : int array;
  redirect_to : int option;
  embeds : int array;
}

let kind_name = function
  | Article -> "article"
  | Hub -> "hub"
  | Redirect -> "redirect"
  | Image -> "image"
  | Download_host -> "download-host"
  | File -> "file"

let text_terms t =
  let title_terms = Textindex.Tokenizer.terms t.title in
  let url_terms = Textindex.Tokenizer.terms_of_url (Url.to_string t.url) in
  let body_terms =
    List.concat_map (fun w -> Textindex.Tokenizer.terms w) t.body
  in
  title_terms @ title_terms @ url_terms @ body_terms

let is_navigable t = t.kind <> Image

let pp ppf t =
  Format.fprintf ppf "#%d [%s] %S <%a>" t.id (kind_name t.kind) t.title Url.pp t.url
