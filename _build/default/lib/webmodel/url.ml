type t = {
  scheme : string;
  host : string;
  path : string list;
  query : (string * string) list;
}

let make ?(scheme = "http") ?(path = []) ?(query = []) host =
  if host = "" then invalid_arg "Url.make: empty host";
  { scheme; host; path; query }

let to_string t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.scheme;
  Buffer.add_string buf "://";
  Buffer.add_string buf t.host;
  List.iter
    (fun seg ->
      Buffer.add_char buf '/';
      Buffer.add_string buf seg)
    t.path;
  (match t.query with
  | [] -> ()
  | q ->
    Buffer.add_char buf '?';
    Buffer.add_string buf
      (String.concat "&" (List.map (fun (k, v) -> k ^ "=" ^ v) q)));
  Buffer.contents buf

let of_string s =
  let body, scheme =
    match String.index_opt s ':' with
    | Some i
      when i + 2 < String.length s && s.[i + 1] = '/' && s.[i + 2] = '/' ->
      (String.sub s (i + 3) (String.length s - i - 3), String.sub s 0 i)
    | _ -> (s, "http")
  in
  let before_query, query_str =
    match String.index_opt body '?' with
    | Some i ->
      (String.sub body 0 i, Some (String.sub body (i + 1) (String.length body - i - 1)))
    | None -> (body, None)
  in
  let host, path =
    match String.index_opt before_query '/' with
    | Some i ->
      let host = String.sub before_query 0 i in
      let rest = String.sub before_query (i + 1) (String.length before_query - i - 1) in
      (host, List.filter (fun seg -> seg <> "") (String.split_on_char '/' rest))
    | None -> (before_query, [])
  in
  let query =
    match query_str with
    | None -> []
    | Some q ->
      List.filter_map
        (fun pair ->
          match String.index_opt pair '=' with
          | Some i ->
            Some (String.sub pair 0 i, String.sub pair (i + 1) (String.length pair - i - 1))
          | None -> if pair = "" then None else Some (pair, ""))
        (String.split_on_char '&' q)
  in
  if host = "" then invalid_arg ("Url.of_string: no host in " ^ s);
  { scheme; host; path; query }

let host t = t.host

let domain_of t =
  let labels = String.split_on_char '.' t.host in
  match List.rev labels with
  | tld :: dom :: _ -> dom ^ "." ^ tld
  | _ -> t.host

let normalize t =
  {
    scheme = String.lowercase_ascii t.scheme;
    host = String.lowercase_ascii t.host;
    path = List.filter (fun seg -> seg <> "") t.path;
    query = List.sort (fun (a, _) (b, _) -> String.compare a b) t.query;
  }

let compare a b = String.compare (to_string (normalize a)) (to_string (normalize b))
let equal a b = compare a b = 0
let pp ppf t = Format.pp_print_string ppf (to_string t)
