(** A simulated web search engine over the synthetic web.

    Plays the role of Google in the use cases: it serves ranked results
    for query strings and mints a result-page (SERP) URL per query, which
    the browser records in history exactly as it would a real engine's
    URL.  Personalization experiments compare the rank of the user's
    intended page under the raw query versus the provenance-expanded
    query — without the engine ever seeing user history (§2.2). *)

type t

type result = { page : int; score : float }

val build : Web_graph.t -> t
(** Index every navigable page (redirects and images are not indexed,
    files are — people do search for downloads). *)

val engine_host : string
(** ["search.example"]. *)

val serp_url : string -> Url.t
(** The result-page URL for a raw query string, e.g.
    [http://search.example/search?q=rosebud+flower]. *)

val query_of_serp : Url.t -> string option
(** Inverse of {!serp_url}; [None] for non-SERP URLs. *)

val search : ?limit:int -> t -> string -> result list
(** Ranked results ([limit] defaults to 10). *)

val rank_of : ?limit:int -> t -> string -> int -> int option
(** 1-based rank of a page in the results for a query, scanning up to
    [limit] (default 50) results. *)
