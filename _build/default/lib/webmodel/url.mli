(** Minimal URL values: enough structure for history storage, textual
    matching and display — scheme, host, path and query. *)

type t = {
  scheme : string;
  host : string;
  path : string list;  (** segments, no slashes *)
  query : (string * string) list;
}

val make : ?scheme:string -> ?path:string list -> ?query:(string * string) list -> string -> t
(** [make host] with [scheme] defaulting to ["http"]. *)

val to_string : t -> string
(** ["scheme://host/seg1/seg2?k=v&k2=v2"]. *)

val of_string : string -> t
(** Inverse of {!to_string} for URLs in that shape; lenient about
    missing scheme (defaults to http).  Raises [Invalid_argument] on an
    empty host. *)

val host : t -> string
val domain_of : t -> string
(** The registrable-ish domain: last two host labels. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val normalize : t -> t
(** Lowercase scheme/host, drop empty path segments, sort query keys. *)

val pp : Format.formatter -> t -> unit
