(** The synthetic web: a topically organized page/link graph with hubs,
    redirects, embedded images, download hosts and planted ambiguous
    terms.

    The generator is seeded and deterministic.  It records ground truth
    (which pages carry a planted ambiguous term, which files belong to
    which download host) so retrieval experiments can score themselves
    without human judgments. *)

type config = {
  n_topics : int;
  sites_per_topic : int;
  articles_per_site : int;
  vocab_size : int;
  title_terms : int;
  body_terms : int;
  links_per_article : int;
  cross_topic_link_prob : float;
  redirect_pages_per_topic : int;
  images_per_site : int;
  max_embeds_per_article : int;
  download_hosts_per_topic : int;
  files_per_download_host : int;
  ambiguous_terms : int;  (** planted terms, each shared by two topics *)
}

val default_config : config
(** 12 topics × 6 sites × 10 articles plus hubs/images/redirects/
    downloads ≈ 1,800 pages — a web comfortably larger than what one
    user visits in 79 days. *)

type ambiguity = {
  term : string;
  topic_a : int;
  topic_b : int;
  pages_a : int list;  (** pages of topic_a whose title carries [term] *)
  pages_b : int list;
}

type t

val generate : ?config:config -> seed:int -> unit -> t

val config : t -> config
val page_count : t -> int
val page : t -> int -> Page_content.t
(** Raises [Invalid_argument] on out-of-range ids. *)

val pages : t -> Page_content.t array
(** The underlying array; treat as read-only. *)

val topic_count : t -> int
val topic : t -> int -> Topic.t
val find_by_url : t -> Url.t -> int option
val pages_of_topic : t -> int -> int list
(** Navigable pages of a topic (hubs, articles, download hosts). *)

val hubs_of_topic : t -> int -> int list
val files_of_topic : t -> int -> int list
val download_hosts : t -> int list
val ambiguities : t -> ambiguity list

val resolve_redirects : t -> int -> int list
(** [resolve_redirects t id] is the redirect chain starting at [id]:
    [[id]] when not a redirect, else [id :: ... :: final]. Chains are
    acyclic by construction. *)
