lib/webmodel/url.mli: Format
