lib/webmodel/page_content.ml: Format List Textindex Url
