lib/webmodel/search_engine.mli: Url Web_graph
