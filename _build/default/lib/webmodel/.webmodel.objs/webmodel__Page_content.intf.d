lib/webmodel/page_content.mli: Format Url
