lib/webmodel/search_engine.ml: Array List Option Page_content String Textindex Url Web_graph
