lib/webmodel/topic.ml: Array Hashtbl List Provkit_util String
