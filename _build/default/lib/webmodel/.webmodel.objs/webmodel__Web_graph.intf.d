lib/webmodel/web_graph.mli: Page_content Topic Url
