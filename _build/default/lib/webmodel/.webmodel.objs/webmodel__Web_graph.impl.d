lib/webmodel/web_graph.ml: Array Hashtbl Int List Page_content Printf Provkit_util String Topic Url
