lib/webmodel/topic.mli: Provkit_util
