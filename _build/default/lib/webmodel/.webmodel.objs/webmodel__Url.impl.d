lib/webmodel/url.ml: Buffer Format List String
