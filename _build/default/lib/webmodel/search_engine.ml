type t = { search : Textindex.Search.t }

type result = { page : int; score : float }

let engine_host = "search.example"

let build web =
  let search = Textindex.Search.create () in
  Array.iter
    (fun (p : Page_content.t) ->
      match p.Page_content.kind with
      | Page_content.Redirect | Page_content.Image -> ()
      | Page_content.Article | Page_content.Hub | Page_content.Download_host
      | Page_content.File ->
        Textindex.Search.index_terms search p.Page_content.id (Page_content.text_terms p))
    (Web_graph.pages web);
  { search }

let encode_query q = String.concat "+" (String.split_on_char ' ' (String.trim q))

let decode_query q = String.concat " " (String.split_on_char '+' q)

let serp_url query =
  Url.make ~path:[ "search" ] ~query:[ ("q", encode_query query) ] engine_host

let query_of_serp (url : Url.t) =
  if url.Url.host = engine_host && url.Url.path = [ "search" ] then
    Option.map decode_query (List.assoc_opt "q" url.Url.query)
  else None

let search ?(limit = 10) t query =
  List.map
    (fun (r : Textindex.Search.result) ->
      { page = r.Textindex.Search.doc; score = r.Textindex.Search.score })
    (Textindex.Search.query ~limit t.search query)

let rank_of ?(limit = 50) t query page =
  let results = search ~limit t query in
  let rec scan i = function
    | [] -> None
    | r :: rest -> if r.page = page then Some i else scan (i + 1) rest
  in
  scan 1 results
