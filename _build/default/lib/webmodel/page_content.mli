(** Synthetic web pages: the unit of content the browser visits. *)

type kind =
  | Article  (** ordinary content page *)
  | Hub  (** site front page, link-dense *)
  | Redirect  (** pure redirect (tracking/shortener); browser never shows it *)
  | Image  (** embedded resource, loaded by articles, never navigated to *)
  | Download_host  (** page offering downloadable files *)
  | File  (** a downloadable payload *)

type t = {
  id : int;
  url : Url.t;
  title : string;
  body : string list;  (** body terms *)
  topic : int;
  kind : kind;
  links : int array;  (** navigable outlink page ids *)
  redirect_to : int option;  (** target for [Redirect] pages *)
  embeds : int array;  (** [Image] page ids loaded inline *)
}

val kind_name : kind -> string

val text_terms : t -> string list
(** Terms a search engine indexes for this page: normalized title, URL
    and body terms (title terms counted twice as a field boost). *)

val is_navigable : t -> bool
(** Users can end up *viewing* this page (everything but [Image]). *)

val pp : Format.formatter -> t -> unit
