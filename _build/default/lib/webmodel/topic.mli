(** Topics: named term vocabularies with Zipfian usage.

    The synthetic web is organized topically (wine, gardening, film…);
    page titles and bodies draw from their topic's vocabulary, which is
    what gives provenance-aware search something semantically coherent
    to exploit, and what lets us plant ambiguous terms across topics for
    the "rosebud" disambiguation experiments. *)

type t

val generate :
  rng:Provkit_util.Prng.t -> id:int -> name:string -> vocab_size:int -> t
(** Vocabulary = the topic name + [vocab_size] pronounceable synthetic
    words, with a Zipf(1.0) usage distribution. *)

val id : t -> int
val name : t -> string
val vocabulary : t -> string array

val sample_term : t -> Provkit_util.Prng.t -> string
(** Zipf-weighted term draw. *)

val sample_terms : t -> Provkit_util.Prng.t -> int -> string list

val core_term : t -> int -> string
(** [core_term t k] is the k-th most probable vocabulary word —
    stable handles for building ground-truth scenarios. *)

val add_term : t -> string -> unit
(** Inject a term (e.g. a planted ambiguous word) into the vocabulary at
    tail rank.  Generators that need a planted term to appear often put
    it into page titles explicitly rather than relying on sampling. *)

val mem_term : t -> string -> bool

val default_names : string array
(** A palette of human-readable topic names ("wine", "gardening",
    "film", "travel", …) used by generators and examples. *)
