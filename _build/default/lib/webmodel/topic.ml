module Prng = Provkit_util.Prng
module Zipf = Provkit_util.Zipf

type t = {
  id : int;
  name : string;
  mutable vocab : string array;
  mutable zipf : Zipf.t;
}

let onsets = [| "b"; "d"; "f"; "g"; "k"; "l"; "m"; "n"; "p"; "r"; "s"; "t"; "v"; "z"; "ch"; "sh"; "br"; "tr"; "st" |]
let nuclei = [| "a"; "e"; "i"; "o"; "u"; "ai"; "ea"; "ou"; "io" |]
let codas = [| ""; "n"; "r"; "s"; "l"; "t"; "nd"; "rm"; "st" |]

let syllable rng =
  Prng.pick rng onsets ^ Prng.pick rng nuclei ^ Prng.pick rng codas

let word rng =
  let n = Prng.int_in rng 2 3 in
  String.concat "" (List.init n (fun _ -> syllable rng))

let generate ~rng ~id ~name ~vocab_size =
  assert (vocab_size >= 1);
  let seen = Hashtbl.create vocab_size in
  Hashtbl.replace seen name ();
  let rec fresh () =
    let w = word rng in
    if Hashtbl.mem seen w then fresh ()
    else begin
      Hashtbl.replace seen w ();
      w
    end
  in
  (* The topic name leads the vocabulary so it is also the most frequent
     term, which matches how real topical sites mention their subject. *)
  let vocab = Array.init vocab_size (fun i -> if i = 0 then name else fresh ()) in
  { id; name; vocab; zipf = Zipf.create ~n:vocab_size ~s:1.0 }

let id t = t.id
let name t = t.name
let vocabulary t = t.vocab

let sample_term t rng = t.vocab.(Zipf.sample t.zipf rng)
let sample_terms t rng n = List.init n (fun _ -> sample_term t rng)

let core_term t k =
  assert (k >= 0 && k < Array.length t.vocab);
  t.vocab.(k)

let add_term t term =
  t.vocab <- Array.append t.vocab [| term |];
  t.zipf <- Zipf.create ~n:(Array.length t.vocab) ~s:1.0

let mem_term t term = Array.exists (String.equal term) t.vocab

let default_names =
  [|
    "wine"; "gardening"; "film"; "travel"; "cooking"; "music"; "soccer";
    "astronomy"; "sailing"; "photography"; "chess"; "poetry"; "cycling";
    "fishing"; "painting"; "history"; "weather"; "finance"; "health";
    "software"; "camping"; "birds"; "coffee"; "architecture"; "theatre";
    "climbing"; "knitting"; "robotics"; "geology"; "opera";
  |]
