type t = { store : Prov_store.t; mutable search_index : Textindex.Search.t }

let indexable (n : Prov_node.t) =
  match n.Prov_node.kind with
  | Prov_node.Page _ | Prov_node.Search_term _ | Prov_node.Bookmark _ -> true
  | Prov_node.Visit _ | Prov_node.Download _ | Prov_node.Form_submission _ -> false

let build_index store =
  let search = Textindex.Search.create () in
  Provgraph.Digraph.iter_nodes (Prov_store.graph store) (fun id n ->
      if indexable n then Textindex.Search.index_terms search id (Prov_node.text_terms n));
  search

let build store = { store; search_index = build_index store }
let refresh t = t.search_index <- build_index t.store
let store t = t.store

let search ?(limit = 20) t query =
  List.map
    (fun (r : Textindex.Search.result) -> (r.Textindex.Search.doc, r.Textindex.Search.score))
    (Textindex.Search.query ~limit t.search_index query)

let search_terms ?(limit = 20) t terms =
  List.map
    (fun (r : Textindex.Search.result) -> (r.Textindex.Search.doc, r.Textindex.Search.score))
    (Textindex.Search.query_terms ~limit t.search_index terms)

let score t ~node ~terms =
  Textindex.Scorer.score_document Textindex.Scorer.default_bm25
    (Textindex.Search.index t.search_index) ~terms ~doc:node

let idf t term = Textindex.Scorer.idf (Textindex.Search.index t.search_index) term
let indexed_count t = Textindex.Search.document_count t.search_index
