(** Text index over provenance nodes.

    Indexes the text-bearing node kinds — pages (title + URL), search
    terms (their queries) and bookmarks — so queries can find textual
    seeds in the graph.  Visits are deliberately not indexed separately:
    they share their page's text, and scoring happens on page nodes. *)

type t

val build : Prov_store.t -> t
(** Snapshot index of the store's current nodes. *)

val refresh : t -> unit
(** Re-index after the store has grown. *)

val store : t -> Prov_store.t

val search : ?limit:int -> t -> string -> (int * float) list
(** Ranked node ids ([limit] defaults to 20). *)

val search_terms : ?limit:int -> t -> string list -> (int * float) list
(** Search with pre-normalized terms. *)

val score : t -> node:int -> terms:string list -> float
(** Text relevance of one indexed node to a term bag (0.0 for nodes that
    are not indexed).  Lets time-contextual search score candidate pages
    that come from the temporal neighborhood rather than from the top of
    the text ranking. *)

val idf : t -> string -> float
(** Corpus rarity of a term within the user's own history — used to pick
    distinctive personalization terms. *)

val indexed_count : t -> int
