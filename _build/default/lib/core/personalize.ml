type config = {
  context_pages : int;
  contextual : Contextual_search.config;
  expansion_terms : int;
  min_idf : float;
}

let default_config =
  {
    context_pages = 15;
    contextual = Contextual_search.default_config;
    expansion_terms = 2;
    min_idf = 0.2;
  }

type expansion = {
  original : string;
  expanded : string;
  added_terms : (string * float) list;
  truncated : bool;
  elapsed_ms : float;
}

let expand ?(config = default_config) ?(budget = Query_budget.unlimited) index query =
  let store = Prov_text_index.store index in
  let response =
    Contextual_search.search ~config:config.contextual ~budget
      ~limit:config.context_pages index query
  in
  let query_terms = Textindex.Tokenizer.terms query in
  let is_query_term term = List.mem term query_terms in
  let tally = Hashtbl.create 64 in
  List.iter
    (fun (r : Contextual_search.result) ->
      let n = Prov_store.node store r.Contextual_search.page in
      (* Each distinct term counts once per page, weighted by how
         relevant the page is to the query. *)
      let terms = List.sort_uniq String.compare (Prov_node.text_terms n) in
      List.iter
        (fun term ->
          if String.length term > 2 && not (is_query_term term) then begin
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt tally term) in
            Hashtbl.replace tally term (prev +. r.Contextual_search.score)
          end)
        terms)
    response.Contextual_search.results;
  let weighted =
    Hashtbl.fold
      (fun term mass acc ->
        let idf = Prov_text_index.idf index term in
        if idf >= config.min_idf then (term, mass *. idf) :: acc else acc)
      tally []
  in
  let ranked =
    List.sort
      (fun (ta, wa) (tb, wb) ->
        let c = Float.compare wb wa in
        if c <> 0 then c else String.compare ta tb)
      weighted
  in
  let added_terms = List.filteri (fun i _ -> i < config.expansion_terms) ranked in
  let expanded =
    match added_terms with
    | [] -> query
    | _ -> query ^ " " ^ String.concat " " (List.map fst added_terms)
  in
  {
    original = query;
    expanded;
    added_terms;
    truncated = response.Contextual_search.truncated;
    elapsed_ms = response.Contextual_search.elapsed_ms;
  }
