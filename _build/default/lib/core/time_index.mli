(** Open/close intervals for visits (§3.2).

    The paper notes Firefox timestamps page visits but never records a
    close, so "from the perspective of Firefox history, every page is
    always open."  The capture layer feeds both endpoints here, enabling
    the co-open and time-window queries behind time-contextual search. *)

type t

val create : unit -> t

val add : t -> node:int -> opened:int -> unit
(** Register a visit node's open time.  Re-adding replaces. *)

val close : t -> node:int -> closed:int -> unit
(** Unknown nodes are ignored.  [closed] earlier than the open time is
    clamped up to it. *)

val interval : t -> int -> (int * int option) option
(** [(opened, closed)] for a node. *)

val size : t -> int

val currently_open : t -> at:int -> int list
(** Nodes whose interval contains [at] (unclosed intervals extend to
    infinity), ascending node id. *)

val co_open : t -> node:int -> int list
(** Nodes whose interval overlaps the given node's, excluding itself. *)

val in_window : t -> start:int -> stop:int -> int list
(** Nodes whose interval intersects \[start, stop\]. *)

val overlap : t -> int -> int -> bool
val direction : t -> int -> int -> (int * int) option
(** Orient a co-open pair by the paper's rule — first opened points to
    later — returning [(src, dst)]; [None] if either node is unknown. *)
