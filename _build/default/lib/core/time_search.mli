(** Time-contextual history search (§2.3).

    "Find the wine page I was looking at while searching for plane
    tickets": rank pages matching the primary query by their temporal
    association with history items matching the context query.  Visits
    open simultaneously score highest; visits within a decaying time
    window still score. *)

type config = {
  candidate_limit : int;  (** text hits considered for the primary query *)
  context_limit : int;  (** history items matched for the context query *)
  proximity_tau : float;
      (** seconds; score of non-overlapping pairs decays as
          exp(-gap/tau) *)
  co_open_bonus : float;  (** multiplier for truly co-open pairs *)
}

val default_config : config

type result = {
  page : int;
  score : float;
  text_score : float;
  best_gap : int option;  (** seconds to the nearest context visit; 0 = co-open *)
}

type response = { results : result list; truncated : bool; elapsed_ms : float }

val search :
  ?config:config ->
  ?budget:Query_budget.t ->
  ?limit:int ->
  Prov_text_index.t ->
  Time_index.t ->
  query:string ->
  context:string ->
  response
(** Pages matching [query], re-ranked by temporal proximity of their
    visits to visits of pages matching [context]. *)

val search_window :
  ?budget:Query_budget.t ->
  ?limit:int ->
  Prov_text_index.t ->
  Time_index.t ->
  query:string ->
  start:int ->
  stop:int ->
  response
(** "What was I looking at about X between t1 and t2": pages matching
    [query] with a visit open in the window. *)
