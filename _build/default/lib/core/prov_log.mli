(** Incremental provenance persistence.

    A browser cannot rewrite its whole provenance database on every
    click; Places persists incrementally and so must a provenance store
    (§4 implements the schema in SQLite precisely because it gives
    cheap incremental writes).  This module is that path for our store:
    an append-only binary log of provenance operations.

    - {!attach} mirrors every store mutation into the log as it happens;
    - {!replay} rebuilds a store from a log, tolerating a truncated tail
      (the crash case: a partial final record is ignored);
    - {!compact} rewrites the log as a relational snapshot plus an empty
      tail, bounding log growth.

    Experiment E14 measures the per-event cost of this path against the
    full-snapshot rewrite. *)

type op =
  | Add_node of Prov_node.t
  | Add_edge of { src : int; dst : int; edge : Prov_edge.t }
  | Close_node of { id : int; time : int }

val encode_op : Buffer.t -> op -> unit
val decode_op : string -> int ref -> op
(** Raises {!Relstore.Errors.Corrupt} on malformed (non-truncated)
    input. *)

(** {2 In-memory journal} *)

type t

val create : unit -> t
(** An empty journal. *)

val append : t -> op -> unit
val length : t -> int
(** Operations appended so far. *)

val byte_size : t -> int
(** Exact encoded size of the journal. *)

val to_bytes : t -> string
val of_bytes : ?tolerate_truncation:bool -> string -> t
(** [tolerate_truncation] (default true) stops cleanly at a partial
    final record instead of raising — the crash-recovery behaviour. *)

val ops : t -> op list

(** {2 Wiring} *)

val recording_store : unit -> Prov_store.t * t
(** A fresh store whose every mutation is mirrored into the returned
    journal.  Use the store exactly as usual (including through
    {!Capture}). *)

val replay : t -> Prov_store.t
(** Rebuild a store by applying the journal in order. *)

val save : t -> path:string -> unit
val load : path:string -> t

(** {2 Compaction} *)

val compact : Prov_store.t -> Relstore.Database.t * t
(** Snapshot the store relationally and return the empty journal that
    replaces the log — [of_database snapshot] + replaying the (empty)
    tail equals the original store. *)
