(** Contextual history search (§2.1).

    The paper's adaptation of Shah et al.'s provenance-aided search: run
    a textual search over history, then spread relevance through the
    provenance graph so that items *derived from* relevant items —
    Citizen Kane found via a "rosebud" search — surface even when they
    share no text with the query.  Mechanically it is a seeded
    neighborhood expansion, the graph-neighborhood analogue of HITS the
    paper cites. *)

type config = {
  seed_count : int;  (** top text hits used as expansion seeds *)
  max_hops : int;
  decay : float;
  text_weight : float;
  graph_weight : float;
  follow_non_user_edges : bool;
      (** include redirect/embed edges in expansion (§3.2 says
          personalization may want them off) *)
  follow_time_edges : bool;  (** include [Same_time] context edges *)
  degree_normalize : bool;
      (** split mass by degree during expansion (random-walk flavour)
          instead of pure hop decay; off by default — E12 compares the
          behaviours, and {!search_pagerank} is the fully normalized
          alternative *)
}

val default_config : config

type result = {
  page : int;  (** page node id *)
  score : float;
  text_score : float;
  graph_score : float;
}

type response = { results : result list; truncated : bool; elapsed_ms : float }

val search :
  ?config:config ->
  ?budget:Query_budget.t ->
  ?limit:int ->
  Prov_text_index.t ->
  string ->
  response
(** [search index query]: ranked page nodes ([limit] defaults to 10). *)

val textual_only : ?limit:int -> Prov_text_index.t -> string -> result list
(** The baseline ranking (no graph expansion) over the same index, for
    like-for-like comparisons inside E4. *)

(** {2 Alternative graph-ranking algorithms}

    §4: "our purpose at this time is not to find the best algorithms for
    browser provenance... We must now develop more intelligent
    algorithms."  These variants answer the same query with personalized
    PageRank and with HITS over the Kleinberg-style focused subgraph
    around the text seeds; experiment E12 compares all three. *)

val search_pagerank :
  ?config:config ->
  ?budget:Query_budget.t ->
  ?limit:int ->
  ?damping:float ->
  Prov_text_index.t ->
  string ->
  response
(** Personalized PageRank restarted at the text seeds, run over the
    seeds' [max_hops]-neighborhood subgraph. *)

val search_hits :
  ?config:config ->
  ?budget:Query_budget.t ->
  ?limit:int ->
  Prov_text_index.t ->
  string ->
  response
(** HITS over the focused subgraph; pages ranked by authority combined
    with their text score. *)
