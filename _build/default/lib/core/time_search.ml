type config = {
  candidate_limit : int;
  context_limit : int;
  proximity_tau : float;
  co_open_bonus : float;
}

let default_config =
  { candidate_limit = 30; context_limit = 20; proximity_tau = 600.0; co_open_bonus = 4.0 }

type result = { page : int; score : float; text_score : float; best_gap : int option }

type response = { results : result list; truncated : bool; elapsed_ms : float }

let page_of_hit store node =
  match Prov_store.node_opt store node with
  | None -> None
  | Some n -> begin
    match n.Prov_node.kind with
    | Prov_node.Page _ -> Some node
    | Prov_node.Bookmark { url; _ } -> Prov_store.page_of_url store url
    | _ -> None
  end

(* Visits reachable from a context hit: a page's instances, or the SERP
   visits a search-term node produced. *)
let context_visits store node =
  match Prov_store.node_opt store node with
  | None -> []
  | Some n -> begin
    match n.Prov_node.kind with
    | Prov_node.Page _ -> Prov_store.visits_of_page store node
    | Prov_node.Search_term _ ->
      List.filter_map
        (fun (dst, (e : Prov_edge.t)) ->
          if e.Prov_edge.kind = Prov_edge.Search_query then Some dst else None)
        (Provgraph.Digraph.out_edges (Prov_store.graph store) node)
    | Prov_node.Bookmark { url; _ } -> begin
      match Prov_store.page_of_url store url with
      | Some page -> Prov_store.visits_of_page store page
      | None -> []
    end
    | _ -> []
  end

let interval_gap (o1, c1) (o2, c2) =
  let c1 = Option.value ~default:max_int c1 and c2 = Option.value ~default:max_int c2 in
  if o1 <= c2 && o2 <= c1 then 0
  else if o2 > c1 then o2 - c1
  else o1 - c2

let proximity config gap =
  if gap = 0 then config.co_open_bonus
  else exp (-.float_of_int gap /. config.proximity_tau)

let rank ?(limit = 10) results =
  let sorted =
    List.sort
      (fun a b ->
        let c = Float.compare b.score a.score in
        if c <> 0 then c else Int.compare a.page b.page)
      results
  in
  List.filteri (fun i _ -> i < limit) sorted

let search ?(config = default_config) ?(budget = Query_budget.unlimited) ?(limit = 10)
    index time_index ~query ~context =
  let running = Query_budget.start budget in
  let store = Prov_text_index.store index in
  let query_terms = Textindex.Tokenizer.terms query in
  (* Candidate pages come from two directions: the top text hits for the
     primary query, and — crucially — every page visited in the temporal
     neighborhood of the context (the page the user half-remembers need
     not be a top-ranked text hit; being open next to the plane-ticket
     search is what identifies it). *)
  let primary = Hashtbl.create 64 in
  let consider page =
    if not (Hashtbl.mem primary page) then begin
      let s = Prov_text_index.score index ~node:page ~terms:query_terms in
      if s > 0.0 then Hashtbl.replace primary page s
    end
  in
  List.iter
    (fun (node, _) ->
      match page_of_hit store node with Some page -> consider page | None -> ())
    (Prov_text_index.search ~limit:config.candidate_limit index query);
  (* Context visit intervals, best text hits first, capped so pathological
     contexts ("the" matching everything) stay bounded. *)
  let context_hits = Prov_text_index.search ~limit:config.context_limit index context in
  let context_intervals =
    List.filteri
      (fun i _ -> i < 4 * config.context_limit)
      (List.concat_map
         (fun (node, _) ->
           List.filter_map
             (fun v -> Time_index.interval time_index v)
             (context_visits store node))
         context_hits)
  in
  (* Temporal-neighborhood candidates. *)
  let reach = int_of_float (3.0 *. config.proximity_tau) in
  List.iter
    (fun (opened, closed) ->
      let stop = Option.value ~default:opened closed in
      List.iter
        (fun visit ->
          match Prov_store.page_of_visit store visit with
          | Some page -> consider page
          | None -> ())
        (Time_index.in_window time_index ~start:(opened - reach) ~stop:(stop + reach)))
    context_intervals;
  let truncated = Query_budget.out_of_time running in
  let results =
    Hashtbl.fold
      (fun page text_score acc ->
        let own_intervals =
          List.filter_map
            (fun v -> Time_index.interval time_index v)
            (Prov_store.visits_of_page store page)
        in
        let best =
          List.fold_left
            (fun best own ->
              List.fold_left
                (fun best ctx ->
                  let gap = interval_gap own ctx in
                  match best with
                  | Some b when b <= gap -> Some b
                  | _ -> Some gap)
                best context_intervals)
            None own_intervals
        in
        match best with
        | None -> acc
        | Some gap ->
          {
            page;
            score = text_score *. proximity config gap;
            text_score;
            best_gap = Some gap;
          }
          :: acc)
      primary []
  in
  {
    results = rank ~limit results;
    truncated;
    elapsed_ms = Query_budget.elapsed_ms running;
  }

let search_window ?(budget = Query_budget.unlimited) ?(limit = 10) index time_index ~query
    ~start ~stop =
  let running = Query_budget.start budget in
  let store = Prov_text_index.store index in
  let in_window = Time_index.in_window time_index ~start ~stop in
  let window_set = Hashtbl.create (List.length in_window) in
  List.iter (fun v -> Hashtbl.replace window_set v ()) in_window;
  let results =
    List.filter_map
      (fun (node, text_score) ->
        match page_of_hit store node with
        | None -> None
        | Some page ->
          let visits = Prov_store.visits_of_page store page in
          if List.exists (Hashtbl.mem window_set) visits then
            Some { page; score = text_score; text_score; best_gap = Some 0 }
          else None)
      (Prov_text_index.search ~limit:(limit * 5) index query)
  in
  (* Deduplicate pages, keeping the best score. *)
  let dedup = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt dedup r.page with
      | Some prev when prev.score >= r.score -> ()
      | _ -> Hashtbl.replace dedup r.page r)
    results;
  {
    results = rank ~limit (Hashtbl.fold (fun _ r acc -> r :: acc) dedup []);
    truncated = Query_budget.out_of_time running;
    elapsed_ms = Query_budget.elapsed_ms running;
  }
