(** The provenance-aware browser, assembled.

    A one-stop facade over capture + store + indexes + the four use-case
    queries, for applications that just want a provenance-aware browser
    session.  Lower-level control lives in the individual modules. *)

type t

val attach : ?capture_config:Capture.config -> Browser.Engine.t -> t
(** Start capturing provenance from a browser engine.  Attach before
    browsing begins: only subsequent events are captured. *)

val engine : t -> Browser.Engine.t
val store : t -> Prov_store.t
val time_index : t -> Time_index.t
val capture : t -> Capture.t

val text_index : t -> Prov_text_index.t
(** The text index over provenance nodes; built lazily on first use and
    after each {!refresh}. *)

val refresh : t -> unit
(** Re-index after browsing added history.  Queries call this
    automatically when the store grew by more than 10 % since the last
    build. *)

(** {2 The four §2 use cases} *)

val contextual_history_search :
  ?budget:Query_budget.t -> ?limit:int -> t -> string -> Contextual_search.response

val personalize_web_search :
  ?budget:Query_budget.t -> t -> string -> Personalize.expansion

val time_contextual_search :
  ?budget:Query_budget.t ->
  ?limit:int ->
  t ->
  query:string ->
  context:string ->
  Time_search.response

val download_lineage :
  ?budget:Query_budget.t -> t -> download_id:int -> Lineage.origin option
(** [download_id] is the engine's download id. *)

val downloads_from_page : ?budget:Query_budget.t -> t -> url:string -> Lineage.descendants
(** All downloads descending from the page with this URL.  Unknown URLs
    yield an empty result. *)

(** {2 Conveniences} *)

val page_title : t -> int -> string
(** Title of a page node ("" for non-pages). *)

val page_url : t -> int -> string

val persist : t -> Relstore.Database.t
(** Snapshot the provenance store into its relational image. *)
