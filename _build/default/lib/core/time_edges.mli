(** Deriving time relationships from open/close stamps (§3.2).

    The paper's storage position is that the "simple addition of a
    corresponding close to each page visit enables queries on time
    relationships" — so the persistent schema stores only the two
    timestamps, and [Same_time] edges are session data: materialized by
    the capture layer for fast expansion, skipped by {!Prov_schema}, and
    re-derivable here after a load. *)

val displayed_visit : Prov_node.t -> bool
(** Visits that actually occupy a tab (not embeds, not download
    fetches). *)

val rebuild_time_index : Prov_store.t -> Time_index.t
(** Reconstruct the interval index from visit nodes' open/close
    stamps. *)

val derive : ?fanout:int -> Prov_store.t -> int
(** Sweep visits in open order and add [Same_time] edges from each
    already-open displayed visit in another tab to the newly opened one
    (most recent first, at most [fanout] per opening, default 4) —
    the same rule the capture layer applies online.  Returns the number
    of edges added.  Call only on stores without existing [Same_time]
    edges (e.g. fresh loads); otherwise edges duplicate. *)
