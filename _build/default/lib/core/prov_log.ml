module V = Relstore.Varint
module C = Relstore.Codec

type op =
  | Add_node of Prov_node.t
  | Add_edge of { src : int; dst : int; edge : Prov_edge.t }
  | Close_node of { id : int; time : int }

(* --- op codec --- *)

let write_opt_int buf = function
  | None -> Buffer.add_char buf '\000'
  | Some n ->
    Buffer.add_char buf '\001';
    V.write_signed buf n

let read_opt_int s pos =
  if !pos >= String.length s then Relstore.Errors.corrupt "prov_log: truncated option"
  else begin
    let c = s.[!pos] in
    incr pos;
    match c with
    | '\000' -> None
    | '\001' -> Some (V.read_signed s pos)
    | _ -> Relstore.Errors.corrupt "prov_log: bad option tag"
  end

let write_kind buf (kind : Prov_node.kind) =
  V.write_unsigned buf (Prov_node.kind_code kind);
  match kind with
  | Prov_node.Page { url; title } ->
    C.write_string buf url;
    C.write_string buf title
  | Prov_node.Visit { url; title; transition; tab } ->
    C.write_string buf url;
    C.write_string buf title;
    V.write_unsigned buf (Browser.Transition.to_code transition);
    V.write_unsigned buf tab
  | Prov_node.Bookmark { title; url } ->
    C.write_string buf title;
    C.write_string buf url
  | Prov_node.Download { source_url; target_path } ->
    C.write_string buf source_url;
    C.write_string buf target_path
  | Prov_node.Search_term { query } -> C.write_string buf query
  | Prov_node.Form_submission { fields } ->
    V.write_unsigned buf (List.length fields);
    List.iter
      (fun (k, v) ->
        C.write_string buf k;
        C.write_string buf v)
      fields

let read_kind s pos : Prov_node.kind =
  match V.read_unsigned s pos with
  | 0 ->
    let url = C.read_string s pos in
    let title = C.read_string s pos in
    Prov_node.Page { url; title }
  | 1 ->
    let url = C.read_string s pos in
    let title = C.read_string s pos in
    let transition = Browser.Transition.of_code (V.read_unsigned s pos) in
    let tab = V.read_unsigned s pos in
    Prov_node.Visit { url; title; transition; tab }
  | 2 ->
    let title = C.read_string s pos in
    let url = C.read_string s pos in
    Prov_node.Bookmark { title; url }
  | 3 ->
    let source_url = C.read_string s pos in
    let target_path = C.read_string s pos in
    Prov_node.Download { source_url; target_path }
  | 4 -> Prov_node.Search_term { query = C.read_string s pos }
  | 5 ->
    let n = V.read_unsigned s pos in
    let fields =
      List.init n (fun _ ->
          let k = C.read_string s pos in
          let v = C.read_string s pos in
          (k, v))
    in
    Prov_node.Form_submission { fields }
  | k -> Relstore.Errors.corrupt "prov_log: unknown node kind %d" k

let encode_op buf = function
  | Add_node n ->
    Buffer.add_char buf '\000';
    V.write_unsigned buf n.Prov_node.id;
    write_kind buf n.Prov_node.kind;
    write_opt_int buf n.Prov_node.time;
    write_opt_int buf n.Prov_node.close_time
  | Add_edge { src; dst; edge } ->
    Buffer.add_char buf '\001';
    V.write_unsigned buf src;
    V.write_unsigned buf dst;
    V.write_unsigned buf (Prov_edge.kind_code edge.Prov_edge.kind);
    V.write_signed buf edge.Prov_edge.time
  | Close_node { id; time } ->
    Buffer.add_char buf '\002';
    V.write_unsigned buf id;
    V.write_signed buf time

let decode_op s pos =
  if !pos >= String.length s then Relstore.Errors.corrupt "prov_log: truncated op tag"
  else begin
    let tag = s.[!pos] in
    incr pos;
    match tag with
    | '\000' ->
      let id = V.read_unsigned s pos in
      let kind = read_kind s pos in
      let time = read_opt_int s pos in
      let close_time = read_opt_int s pos in
      Add_node { Prov_node.id; kind; time; close_time }
    | '\001' ->
      let src = V.read_unsigned s pos in
      let dst = V.read_unsigned s pos in
      let kind = Prov_edge.kind_of_code (V.read_unsigned s pos) in
      let time = V.read_signed s pos in
      Add_edge { src; dst; edge = { Prov_edge.kind; time } }
    | '\002' ->
      let id = V.read_unsigned s pos in
      let time = V.read_signed s pos in
      Close_node { id; time }
    | c -> Relstore.Errors.corrupt "prov_log: unknown op tag %d" (Char.code c)
  end

(* --- journal --- *)

let magic = "PROVLOG1"

type t = { buf : Buffer.t; mutable count : int }

let create () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  { buf; count = 0 }

let append t op =
  encode_op t.buf op;
  t.count <- t.count + 1

let length t = t.count
let byte_size t = Buffer.length t.buf
let to_bytes t = Buffer.contents t.buf

let decode_all ~tolerate_truncation s =
  let lm = String.length magic in
  if String.length s < lm || String.sub s 0 lm <> magic then
    Relstore.Errors.corrupt "prov_log: bad magic";
  let pos = ref lm in
  let ops = ref [] in
  (try
     while !pos < String.length s do
       (* Remember where this record started: a truncated tail decodes
          partially and must be discarded wholesale. *)
       let start = !pos in
       match decode_op s pos with
       | op -> ops := op :: !ops
       | exception Relstore.Errors.Corrupt _ when tolerate_truncation ->
         pos := start;
         raise Exit
     done
   with Exit -> ());
  List.rev !ops

let of_bytes ?(tolerate_truncation = true) s =
  let t = create () in
  List.iter (append t) (decode_all ~tolerate_truncation s);
  t

let ops t = decode_all ~tolerate_truncation:false (to_bytes t)

let recording_store () =
  let store = Prov_store.create () in
  let journal = create () in
  Prov_store.set_observer store (fun m ->
      append journal
        (match m with
        | Prov_store.M_node n -> Add_node n
        | Prov_store.M_edge (src, dst, edge) -> Add_edge { src; dst; edge }
        | Prov_store.M_close (id, time) -> Close_node { id; time }));
  (store, journal)

let replay t =
  let store = Prov_store.create () in
  List.iter
    (fun op ->
      match op with
      | Add_node n -> Prov_store.restore_node store n
      | Add_edge { src; dst; edge } -> Prov_store.restore_edge store ~src ~dst edge
      | Close_node { id; time } -> begin
        match Prov_store.node_opt store id with
        | Some n -> Prov_store.restore_node store { n with Prov_node.close_time = Some time }
        | None -> ()
      end)
    (ops t);
  store

let save t ~path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_bytes t))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_bytes (really_input_string ic len))

let compact store = (Prov_schema.to_database store, create ())
