(** Personalizing web search (§2.2).

    Term-frequency analysis over the results of a contextual history
    search: find the terms of the user's own history most associated
    with the query, and expand the web query with them — "rosebud"
    becomes "rosebud flower" for the gardener.  The expansion happens
    entirely on the user's machine; the search engine only ever sees the
    expanded query string, never the history (the paper's privacy
    argument). *)

type config = {
  context_pages : int;  (** contextual-search results mined for terms *)
  contextual : Contextual_search.config;
  expansion_terms : int;  (** how many terms to add *)
  min_idf : float;
      (** drop terms too common in the user's history to discriminate *)
}

val default_config : config

type expansion = {
  original : string;
  expanded : string;  (** original plus the chosen terms *)
  added_terms : (string * float) list;  (** term, association weight *)
  truncated : bool;
  elapsed_ms : float;
}

val expand :
  ?config:config -> ?budget:Query_budget.t -> Prov_text_index.t -> string -> expansion
(** [expand index query] mines the provenance neighborhood of [query]
    and returns the expanded query.  When history holds no usable
    context the expansion equals the original query. *)
