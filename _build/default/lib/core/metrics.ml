let rank_of ~equal item results =
  let rec scan i = function
    | [] -> None
    | x :: rest -> if equal item x then Some i else scan (i + 1) rest
  in
  scan 1 results

let reciprocal_rank = function None -> 0.0 | Some r -> 1.0 /. float_of_int r

let mrr ranks =
  match ranks with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc r -> acc +. reciprocal_rank r) 0.0 ranks
    /. float_of_int (List.length ranks)

let hit_at k ranks =
  match ranks with
  | [] -> 0.0
  | _ ->
    let hits =
      List.length (List.filter (function Some r -> r <= k | None -> false) ranks)
    in
    float_of_int hits /. float_of_int (List.length ranks)

let precision_recall ~relevant ~retrieved =
  let module Iset = Set.Make (Int) in
  let rel = Iset.of_list relevant and ret = Iset.of_list retrieved in
  let inter = Iset.cardinal (Iset.inter rel ret) in
  let precision =
    if Iset.is_empty ret then if Iset.is_empty rel then 1.0 else 0.0
    else float_of_int inter /. float_of_int (Iset.cardinal ret)
  in
  let recall =
    if Iset.is_empty rel then 1.0
    else float_of_int inter /. float_of_int (Iset.cardinal rel)
  in
  (precision, recall)

let f1 ~precision ~recall =
  if precision +. recall = 0.0 then 0.0
  else 2.0 *. precision *. recall /. (precision +. recall)

let mean_rank ranks =
  let found = List.filter_map Fun.id ranks in
  match found with
  | [] -> None
  | _ ->
    Some
      (List.fold_left (fun acc r -> acc +. float_of_int r) 0.0 found
      /. float_of_int (List.length found))
