(** Cycle breaking by versioning (§3.1) and its ablation (E9).

    Pages and links are not acyclic; provenance by definition is.  The
    store's default strategy is PASS-style *node versioning*: every page
    visit is its own instance node, so the causal graph is acyclic by
    construction — verified here.  The alternative the paper discusses —
    unversioned page nodes with *time-stamped edges* — is materialized
    by {!page_projection} so the two designs can be compared on
    acyclicity, size and query behaviour. *)

val causal_projection :
  Prov_store.t -> (Prov_node.t, Prov_edge.t) Provgraph.Digraph.t
(** The store's graph restricted to causal edges (drops [Same_time]). *)

val is_acyclic : Prov_store.t -> bool
(** True iff the causal projection is a DAG.  The versioned store must
    always satisfy this; it is asserted by the test suite. *)

val find_causal_cycle : Prov_store.t -> int list option

(** {2 The edge-timestamp alternative} *)

type page_graph = {
  graph : (string, Prov_edge.t) Provgraph.Digraph.t;
      (** node ids are the store's page-node ids; payload is the URL *)
  page_of_store_node : int -> int option;
      (** maps any store node (visit/page) to its page-graph node *)
}

val page_projection : Prov_store.t -> page_graph
(** Collapse visit instances onto their pages: a traversal edge between
    visits becomes a time-stamped edge between their pages.  Non-page
    endpoints (downloads, terms, bookmarks, forms) are dropped.  The
    result is typically cyclic — the §3.1 problem. *)

val projection_database : page_graph -> Relstore.Database.t
(** Relational image of the projection (pp_node/pp_edge tables) for the
    E9 size comparison. *)

type comparison = {
  versioned_nodes : int;
  versioned_edges : int;
  versioned_acyclic : bool;
  versioned_bytes : int;
  projected_nodes : int;
  projected_edges : int;
  projected_acyclic : bool;
  projected_bytes : int;
}

val compare_strategies : Prov_store.t -> comparison
