module Traversal = Provgraph.Traversal

type recognizer = int -> bool

let default_recognizer ?(min_visits = 3) store =
  let typed_pages = Hashtbl.create 64 in
  Provgraph.Digraph.iter_nodes (Prov_store.graph store) (fun id n ->
      match n.Prov_node.kind with
      | Prov_node.Visit { transition = Browser.Transition.Typed; _ } -> begin
        match Prov_store.page_of_visit store id with
        | Some page -> Hashtbl.replace typed_pages page ()
        | None -> ()
      end
      | _ -> ());
  let displayed_visits page =
    List.length
      (List.filter
         (fun v -> Time_edges.displayed_visit (Prov_store.node store v))
         (Prov_store.visits_of_page store page))
  in
  fun id ->
    match Prov_store.node_opt store id with
    | None -> false
    | Some n -> begin
      match n.Prov_node.kind with
      | Prov_node.Page _ ->
        (* Only visits the user actually saw count: a file fetched five
           times was never *seen* five times. *)
        displayed_visits id >= min_visits || Hashtbl.mem typed_pages id
      | Prov_node.Bookmark _ | Prov_node.Search_term _ -> true
      | Prov_node.Visit _ | Prov_node.Download _ | Prov_node.Form_submission _ -> false
    end

let causal_follow ~src:_ ~dst:_ (e : Prov_edge.t) = Prov_edge.is_causal e.Prov_edge.kind

type ancestry = { ancestors : (int * int) list; truncated : bool; elapsed_ms : float }

let ancestors ?(budget = Query_budget.unlimited) ?max_depth store id =
  let running = Query_budget.start budget in
  let outcome =
    Traversal.bfs ~direction:Traversal.Backward ?max_depth
      ?budget:(Query_budget.remaining_nodes running) ~follow:causal_follow
      (Prov_store.graph store) ~roots:[ id ]
  in
  let ancestors =
    List.filter (fun (node, _) -> node <> id) outcome.Traversal.visited
  in
  {
    ancestors;
    truncated = Query_budget.was_truncated running outcome.Traversal.truncated;
    elapsed_ms = Query_budget.elapsed_ms running;
  }

type origin = {
  node : int;
  distance : int;
  path : int list;
  truncated : bool;
  elapsed_ms : float;
}

let first_recognizable ?(budget = Query_budget.unlimited) ?recognizer store id =
  let running = Query_budget.start budget in
  let recognize =
    match recognizer with Some r -> r | None -> default_recognizer store
  in
  let graph = Prov_store.graph store in
  (* Hand-rolled backward BFS so the walk stops at the first (nearest)
     recognizable ancestor instead of exhausting the whole ancestry —
     origins are typically a handful of hops away while ancestries span
     whole sessions. *)
  let depth = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  Hashtbl.replace depth id 0;
  let queue = Queue.create () in
  Queue.push id queue;
  let found = ref None in
  let truncated = ref false in
  let expansions = ref 0 in
  while !found = None && not (Queue.is_empty queue) do
    (match Query_budget.remaining_nodes running with
    | Some r when !expansions >= r ->
      truncated := true;
      Queue.clear queue
    | _ -> ());
    if not (Queue.is_empty queue) then begin
      let current = Queue.pop queue in
      incr expansions;
      let d = Hashtbl.find depth current in
      let parents =
        List.filter_map
          (fun (src, (e : Prov_edge.t)) ->
            if causal_follow ~src:current ~dst:src e then Some src else None)
          (Provgraph.Digraph.in_edges graph current)
      in
      List.iter
        (fun ancestor ->
          if !found = None && not (Hashtbl.mem depth ancestor) then begin
            Hashtbl.replace depth ancestor (d + 1);
            Hashtbl.replace parent ancestor current;
            if recognize ancestor then found := Some (ancestor, d + 1)
            else Queue.push ancestor queue
          end)
        parents
    end
  done;
  Query_budget.consume_nodes running !expansions;
  let truncated = Query_budget.was_truncated running !truncated in
  match !found with
  | None -> None
  | Some (node, distance) ->
    (* Reconstruct the action path from the BFS parent pointers. *)
    let rec build acc v = if v = id then v :: acc else build (v :: acc) (Hashtbl.find parent v) in
    let path = build [] node in
    Some { node; distance; path; truncated; elapsed_ms = Query_budget.elapsed_ms running }

type descendants = {
  downloads : int list;
  visited : int;
  truncated : bool;
  elapsed_ms : float;
}

let downloads_descending ?(budget = Query_budget.unlimited) store id =
  let running = Query_budget.start budget in
  let outcome =
    Traversal.bfs ~direction:Traversal.Forward
      ?budget:(Query_budget.remaining_nodes running) ~follow:causal_follow
      (Prov_store.graph store) ~roots:[ id ]
  in
  let downloads =
    List.sort Int.compare
      (List.filter_map
         (fun (node, _) ->
           match Prov_store.node_opt store node with
           | Some n when Prov_node.is_download n -> Some node
           | _ -> None)
         outcome.Traversal.visited)
  in
  {
    downloads;
    visited = List.length outcome.Traversal.visited;
    truncated = Query_budget.was_truncated running outcome.Traversal.truncated;
    elapsed_ms = Query_budget.elapsed_ms running;
  }

let describe_path store path =
  List.map
    (fun id ->
      match Prov_store.node_opt store id with
      | Some n -> Prov_node.display n
      | None -> Printf.sprintf "#%d (unknown)" id)
    path
