(** The tree structure of fully versioned history (§3.1).

    "If both pages and links are versioned as new instances, and only
    link relationships are considered, the result is a tree structure.
    There were a number of early efforts by researchers such as Ayers
    and Stasko to develop an interface that used this property to
    visualize recent history; we believe it could also be used for
    efficient storage."

    This module materializes that observation: every visit instance has
    at most one *navigation parent* (the traversal edge that displayed
    it), so the visit graph restricted to navigation edges is a forest.
    The forest powers a recent-history visualization (the Ayers-Stasko
    use) and a parent-pointer encoding whose size we compare against the
    full edge-table encoding (the storage use). *)

type t

type node = {
  visit : int;  (** visit node id in the store *)
  parent : int option;  (** navigation parent visit *)
  children : int list;  (** visit ids, ascending *)
  edge : Prov_edge.kind option;  (** how this visit was reached *)
}

val build : Prov_store.t -> t
(** Extract the navigation forest from a store.  Navigation edges are
    the traversal kinds (link/typed/bookmark-traversal/redirect/
    form-result/tab-spawn) between visit instances; when several point
    at one visit (possible only across distinct event kinds) the
    earliest wins, preserving the tree property. *)

val node : t -> int -> node option
val roots : t -> int list
(** Session starts: visits with no navigation parent, ascending. *)

val size : t -> int
val is_forest : t -> bool
(** Every node has at most one parent and there are no cycles; [build]
    guarantees this, the test suite asserts it. *)

val depth : t -> int -> int
(** Root distance of a visit; 0 for roots and unknown ids. *)

val subtree : t -> int -> int list
(** The visit and all its navigation descendants, preorder. *)

val render :
  ?max_nodes:int -> ?since:int -> Prov_store.t -> t -> string
(** ASCII tree of (recent) history — the Ayers-Stasko view.  [since]
    drops sessions rooted before the given time; [max_nodes] truncates
    output (default 200). *)

type encoding_comparison = {
  visits : int;
  parent_pointer_bytes : int;  (** forest encoded as one varint parent per visit *)
  edge_table_bytes : int;  (** the same edges as relational rows + indexes *)
}

val storage_comparison : Prov_store.t -> t -> encoding_comparison
(** The §3.1 storage claim, quantified: encode the navigation structure
    both ways and compare exact byte sizes. *)
