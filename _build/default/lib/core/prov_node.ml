type kind =
  | Page of { url : string; title : string }
  | Visit of { url : string; title : string; transition : Browser.Transition.t; tab : int }
  | Bookmark of { title : string; url : string }
  | Download of { source_url : string; target_path : string }
  | Search_term of { query : string }
  | Form_submission of { fields : (string * string) list }

type t = { id : int; kind : kind; time : int option; close_time : int option }

let kind_code = function
  | Page _ -> 0
  | Visit _ -> 1
  | Bookmark _ -> 2
  | Download _ -> 3
  | Search_term _ -> 4
  | Form_submission _ -> 5

let kind_label = function
  | Page _ -> "page"
  | Visit _ -> "visit"
  | Bookmark _ -> "bookmark"
  | Download _ -> "download"
  | Search_term _ -> "search-term"
  | Form_submission _ -> "form"

let text_terms t =
  let module Tok = Textindex.Tokenizer in
  match t.kind with
  | Page { url; title } | Visit { url; title; _ } | Bookmark { title; url } ->
    Tok.terms title @ Tok.terms_of_url url
  | Download { source_url; target_path } ->
    Tok.terms_of_url source_url @ Tok.terms_of_url target_path
  | Search_term { query } -> Tok.terms query
  | Form_submission { fields } ->
    List.concat_map (fun (_, value) -> Tok.terms value) fields

let display t =
  match t.kind with
  | Page { url; title } -> Printf.sprintf "page %S <%s>" title url
  | Visit { url; title; transition; _ } ->
    Printf.sprintf "visit %S <%s> via %s" title url (Browser.Transition.name transition)
  | Bookmark { title; _ } -> Printf.sprintf "bookmark %S" title
  | Download { target_path; _ } -> Printf.sprintf "download %s" target_path
  | Search_term { query } -> Printf.sprintf "search %S" query
  | Form_submission { fields } ->
    Printf.sprintf "form {%s}"
      (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) fields))

let is_page t = match t.kind with Page _ -> true | _ -> false
let is_visit t = match t.kind with Visit _ -> true | _ -> false
let is_download t = match t.kind with Download _ -> true | _ -> false
let is_search_term t = match t.kind with Search_term _ -> true | _ -> false

let url_of t =
  match t.kind with
  | Page { url; _ } | Visit { url; _ } | Bookmark { url; _ } -> Some url
  | Download { source_url; _ } -> Some source_url
  | Search_term _ | Form_submission _ -> None

let pp ppf t = Format.fprintf ppf "#%d %s" t.id (display t)
