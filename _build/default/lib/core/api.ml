type t = {
  engine : Browser.Engine.t;
  capture : Capture.t;
  mutable index : Prov_text_index.t option;
  mutable indexed_nodes : int;  (* store size when the index was built *)
}

let attach ?capture_config engine =
  let capture = Capture.attach ?config:capture_config engine in
  { engine; capture; index = None; indexed_nodes = 0 }

let engine t = t.engine
let capture t = t.capture
let store t = Capture.store t.capture
let time_index t = Capture.time_index t.capture

let build_index t =
  let index = Prov_text_index.build (store t) in
  t.index <- Some index;
  t.indexed_nodes <- Prov_store.node_count (store t);
  index

let refresh t = ignore (build_index t)

let text_index t =
  match t.index with
  | None -> build_index t
  | Some index ->
    let now = Prov_store.node_count (store t) in
    if now > t.indexed_nodes + (t.indexed_nodes / 10) then build_index t else index

let contextual_history_search ?budget ?limit t query =
  Contextual_search.search ?budget ?limit (text_index t) query

let personalize_web_search ?budget t query =
  Personalize.expand ?budget (text_index t) query

let time_contextual_search ?budget ?limit t ~query ~context =
  Time_search.search ?budget ?limit (text_index t) (time_index t) ~query ~context

let download_lineage ?budget t ~download_id =
  match Prov_store.download_node (store t) download_id with
  | None -> None
  | Some node -> Lineage.first_recognizable ?budget (store t) node

let downloads_from_page ?budget t ~url =
  match Prov_store.page_of_url (store t) url with
  | None ->
    { Lineage.downloads = []; visited = 0; truncated = false; elapsed_ms = 0.0 }
  | Some page -> Lineage.downloads_descending ?budget (store t) page

let page_title t id =
  match Prov_store.node_opt (store t) id with
  | Some { Prov_node.kind = Prov_node.Page { title; _ }; _ } -> title
  | _ -> ""

let page_url t id =
  match Prov_store.node_opt (store t) id with
  | Some { Prov_node.kind = Prov_node.Page { url; _ }; _ } -> url
  | _ -> ""

let persist t = Prov_schema.to_database (store t)
