module Digraph = Provgraph.Digraph

type outcome = {
  store : Prov_store.t;
  expired_visits : int;
  summary_edges : int;
  kept_nodes : int;
}

let expired_visit ~cutoff (n : Prov_node.t) =
  Prov_node.is_visit n
  && match n.Prov_node.time with Some t -> t < cutoff | None -> false

(* Map an endpoint of an edge into the post-expiry store: kept nodes map
   to themselves, expired visits collapse onto their page object. *)
let endpoint_mapper ~cutoff store =
  fun id ->
    match Prov_store.node_opt store id with
    | None -> None
    | Some n ->
      if expired_visit ~cutoff n then Prov_store.page_of_visit store id else Some id

let plan ~cutoff store =
  let g = Prov_store.graph store in
  let map_endpoint = endpoint_mapper ~cutoff store in
  let kept = ref [] and expired = ref 0 in
  Digraph.iter_nodes g (fun _ n ->
      if expired_visit ~cutoff n then incr expired else kept := n :: !kept);
  (* Edges: verbatim between kept nodes; summarized when an endpoint
     expired.  Summaries are deduplicated per (src, dst, kind), keeping
     the earliest action time. *)
  let verbatim = ref [] in
  let summaries : (int * int * Prov_edge.kind, int) Hashtbl.t = Hashtbl.create 256 in
  Digraph.iter_edges g (fun src dst (e : Prov_edge.t) ->
      let src_expired =
        match Prov_store.node_opt store src with
        | Some n -> expired_visit ~cutoff n
        | None -> false
      in
      let dst_expired =
        match Prov_store.node_opt store dst with
        | Some n -> expired_visit ~cutoff n
        | None -> false
      in
      if (not src_expired) && not dst_expired then verbatim := (src, dst, e) :: !verbatim
      else if Prov_edge.is_causal e.Prov_edge.kind && e.Prov_edge.kind <> Prov_edge.Instance
      then begin
        match (map_endpoint src, map_endpoint dst) with
        | Some s, Some d when s <> d ->
          let key = (s, d, e.Prov_edge.kind) in
          let time =
            match Hashtbl.find_opt summaries key with
            | Some t -> min t e.Prov_edge.time
            | None -> e.Prov_edge.time
          in
          Hashtbl.replace summaries key time
        | _ -> ()
      end);
  (!kept, !expired, List.rev !verbatim, summaries)

let expire ~cutoff store =
  let kept, expired_visits, verbatim, summaries = plan ~cutoff store in
  let out = Prov_store.create () in
  List.iter (Prov_store.restore_node out) kept;
  List.iter (fun (src, dst, e) -> Prov_store.restore_edge out ~src ~dst e) verbatim;
  Hashtbl.iter
    (fun (src, dst, kind) time ->
      Prov_store.restore_edge out ~src ~dst { Prov_edge.kind; time })
    summaries;
  {
    store = out;
    expired_visits;
    summary_edges = Hashtbl.length summaries;
    kept_nodes = List.length kept;
  }

let summarized_page_edges ~cutoff store =
  let _, _, _, summaries = plan ~cutoff store in
  let pairs =
    Hashtbl.fold
      (fun (src, dst, _) time acc ->
        match (Prov_store.node_opt store src, Prov_store.node_opt store dst) with
        | Some a, Some b when Prov_node.is_page a && Prov_node.is_page b ->
          (src, dst, time) :: acc
        | _ -> acc)
      summaries []
  in
  List.sort compare pairs
