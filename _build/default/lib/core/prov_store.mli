(** The homogeneous provenance graph store (§3.4): one graph, every
    history object a node, every relationship an edge.

    This is the in-memory form all queries run against.  {!Prov_schema}
    round-trips it through the relational engine for persistence and
    storage accounting. *)

type t

val create : unit -> t

val graph : t -> (Prov_node.t, Prov_edge.t) Provgraph.Digraph.t
(** The underlying graph (shared, live). *)

(** {2 Node creation}

    Pages and search terms are deduplicated (by URL and query text);
    visits, bookmarks, downloads and forms always create fresh nodes. *)

val add_page : t -> url:string -> title:string -> time:int -> int
val add_visit :
  t ->
  engine_visit:int ->
  url:string ->
  title:string ->
  transition:Browser.Transition.t ->
  tab:int ->
  time:int ->
  int
(** Creates (or refreshes) the page node and the [Instance] edge
    page -> visit. *)

val close_visit : t -> engine_visit:int -> time:int -> unit
(** Record when the visit stopped being displayed.  Unknown ids are
    ignored (the engine may close SERP visits captured before the
    observer attached). *)

val add_bookmark : t -> engine_bookmark:int -> url:string -> title:string -> time:int -> int
val add_download :
  t -> engine_download:int -> source_url:string -> target_path:string -> time:int -> int
val add_search_term : t -> query:string -> time:int -> int
val add_form : t -> engine_form:int -> fields:(string * string) list -> time:int -> int

val add_edge : t -> src:int -> dst:int -> Prov_edge.kind -> time:int -> unit

(** {2 Mutation observation (incremental persistence)}

    {!Prov_log} mirrors store mutations into an append-only journal.
    The observer fires on every node insert/update, edge insert and
    close stamp — but not on {!restore_node}/{!restore_edge}, which are
    the replay path itself. *)

type mutation =
  | M_node of Prov_node.t  (** inserted or payload-replaced *)
  | M_edge of int * int * Prov_edge.t
  | M_close of int * int  (** node id, close time *)

val set_observer : t -> (mutation -> unit) -> unit
(** At most one observer; setting replaces. *)

val clear_observer : t -> unit

(** {2 Restoration (persistence layer only)}

    Re-insert nodes/edges with their original ids when loading from the
    relational image.  [restore_node] refreshes the URL/query lookup
    tables; engine-id mappings are not part of the persistent image. *)

val restore_node : t -> Prov_node.t -> unit
val restore_edge : t -> src:int -> dst:int -> Prov_edge.t -> unit

(** {2 Lookup} *)

val node : t -> int -> Prov_node.t
(** Raises [Not_found]. *)

val node_opt : t -> int -> Prov_node.t option
val page_of_url : t -> string -> int option
val visit_node : t -> int -> int option
(** By engine visit id. *)

val bookmark_node : t -> int -> int option
val download_node : t -> int -> int option
val term_node : t -> string -> int option
val form_node : t -> int -> int option

val page_of_visit : t -> int -> int option
(** The page node this visit instantiates. *)

val visits_of_page : t -> int -> int list
(** Visit instances of a page node, ascending node id. *)

val page_visit_count : t -> int -> int
(** Number of visit instances — the "user is likely to recognize"
    signal of §2.4. *)

val page_hidden : t -> int -> bool
(** True when every visit instance of the page is an embed or a redirect
    hop — the pages Places marks [hidden] and keeps out of history
    search results.  Non-page nodes are not hidden. *)

(** {2 Enumeration and statistics} *)

val nodes_of_kind : t -> (Prov_node.t -> bool) -> int list
val node_count : t -> int
val edge_count : t -> int

type stats = {
  nodes_total : int;
  edges_total : int;
  nodes_by_kind : (string * int) list;
  edges_by_kind : (string * int) list;
}

val stats : t -> stats
val pp_stats : Format.formatter -> t -> unit
