module Digraph = Provgraph.Digraph

type node = {
  visit : int;
  parent : int option;
  children : int list;
  edge : Prov_edge.kind option;
}

type t = { nodes : (int, node) Hashtbl.t; root_list : int list }

let navigation_kind = function
  | Prov_edge.Link_traversal | Prov_edge.Typed_traversal | Prov_edge.Redirect
  | Prov_edge.Tab_spawn | Prov_edge.Reload -> true
  | Prov_edge.Bookmark_traversal | Prov_edge.Form_result
  (* these originate at bookmark/form nodes, not visits; the visit->visit
     navigation parent is absent for them *)
  | Prov_edge.Bookmarked_from | Prov_edge.Embed | Prov_edge.Form_source
  | Prov_edge.Download_source | Prov_edge.Download_fetch | Prov_edge.Search_query
  | Prov_edge.Searched_from | Prov_edge.Instance | Prov_edge.Same_time -> false

let displayed store id =
  match Prov_store.node_opt store id with
  | Some n -> Time_edges.displayed_visit n
  | None -> false

let build store =
  let g = Prov_store.graph store in
  let nodes = Hashtbl.create 1024 in
  let children : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let visits =
    List.filter (displayed store) (Digraph.filter_nodes g (fun _ n -> Prov_node.is_visit n))
  in
  (* Pick each visit's navigation parent: the earliest navigation edge
     from another displayed visit. *)
  let parent_of visit =
    let candidates =
      List.filter_map
        (fun (src, (e : Prov_edge.t)) ->
          if navigation_kind e.Prov_edge.kind && displayed store src then
            Some (e.Prov_edge.time, src, e.Prov_edge.kind)
          else None)
        (Digraph.in_edges g visit)
    in
    match List.sort compare candidates with
    | (_, src, kind) :: _ -> Some (src, kind)
    | [] -> None
  in
  List.iter
    (fun visit ->
      match parent_of visit with
      | Some (src, kind) ->
        Hashtbl.replace nodes visit { visit; parent = Some src; children = []; edge = Some kind };
        Hashtbl.replace children src
          (visit :: Option.value ~default:[] (Hashtbl.find_opt children src))
      | None -> Hashtbl.replace nodes visit { visit; parent = None; children = []; edge = None })
    visits;
  Hashtbl.iter
    (fun visit kids ->
      match Hashtbl.find_opt nodes visit with
      | Some n -> Hashtbl.replace nodes visit { n with children = List.sort Int.compare kids }
      | None -> ())
    children;
  let root_list =
    List.sort Int.compare
      (Hashtbl.fold (fun id n acc -> if n.parent = None then id :: acc else acc) nodes [])
  in
  { nodes; root_list }

let node t id = Hashtbl.find_opt t.nodes id
let roots t = t.root_list
let size t = Hashtbl.length t.nodes

let depth t id =
  let rec go id acc =
    match node t id with
    | Some { parent = Some p; _ } when acc < 1_000_000 -> go p (acc + 1)
    | _ -> acc
  in
  go id 0

let subtree t id =
  match node t id with
  | None -> []
  | Some _ ->
    let out = ref [] in
    let rec walk id =
      out := id :: !out;
      match node t id with
      | Some n -> List.iter walk n.children
      | None -> ()
    in
    walk id;
    List.rev !out

let is_forest t =
  (* Parent uniqueness holds by construction; check acyclicity by
     walking up from every node with a step bound. *)
  let bound = size t + 1 in
  Hashtbl.fold
    (fun id _ ok ->
      ok
      &&
      let rec climb id steps =
        if steps > bound then false
        else
          match node t id with
          | Some { parent = Some p; _ } -> climb p (steps + 1)
          | _ -> true
      in
      climb id 0)
    t.nodes true

let render ?(max_nodes = 200) ?(since = min_int) store t =
  let buf = Buffer.create 1024 in
  let emitted = ref 0 in
  let label visit =
    match Prov_store.node_opt store visit with
    | Some ({ Prov_node.kind = Prov_node.Visit { title; url; _ }; time; _ } as _n) ->
      let shown = if title = "" then url else title in
      Printf.sprintf "%s  [t=%d]" (Provkit_util.Strutil.truncate 48 shown)
        (Option.value ~default:0 time)
    | _ -> Printf.sprintf "#%d" visit
  in
  let edge_marker = function
    | Some Prov_edge.Typed_traversal -> "(typed) "
    | Some Prov_edge.Redirect -> "(redirect) "
    | Some Prov_edge.Tab_spawn -> "(new tab) "
    | _ -> ""
  in
  let rec emit prefix visit =
    if !emitted < max_nodes then begin
      incr emitted;
      (match node t visit with
      | Some n ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s%s\n" prefix (edge_marker n.edge) (label visit));
        List.iter (emit (prefix ^ "  ")) n.children
      | None -> ())
    end
  in
  let recent_root root =
    match Prov_store.node_opt store root with
    | Some { Prov_node.time = Some time; _ } -> time >= since
    | _ -> true
  in
  List.iter
    (fun root -> if recent_root root then emit "" root)
    t.root_list;
  if !emitted >= max_nodes then Buffer.add_string buf "...(truncated)\n";
  Buffer.contents buf

type encoding_comparison = {
  visits : int;
  parent_pointer_bytes : int;
  edge_table_bytes : int;
}

let storage_comparison store t =
  (* Parent-pointer encoding: per visit, varint(visit id) + varint(parent
     or 0) + one kind byte. *)
  let parent_pointer_bytes =
    Hashtbl.fold
      (fun id n acc ->
        acc
        + Relstore.Varint.size_unsigned id
        + Relstore.Varint.size_unsigned (Option.value ~default:0 n.parent)
        + 1)
      t.nodes 0
  in
  (* The same relationships as relational edge rows with src/dst indexes
     (what prov_edge costs for them). *)
  let edge_schema =
    Relstore.Schema.make ~name:"nav_edge"
      [
        Relstore.Column.make "src" Relstore.Value.Tint;
        Relstore.Column.make "dst" Relstore.Value.Tint;
        Relstore.Column.make "kind" Relstore.Value.Tint;
      ]
  in
  let table = Relstore.Table.create edge_schema in
  Relstore.Table.add_index table ~name:"nav_src" ~columns:[ "src" ];
  Relstore.Table.add_index table ~name:"nav_dst" ~columns:[ "dst" ];
  Hashtbl.iter
    (fun id n ->
      match (n.parent, n.edge) with
      | Some p, Some kind ->
        ignore
          (Relstore.Table.insert_fields table
             [
               ("src", Relstore.Value.Int p);
               ("dst", Relstore.Value.Int id);
               ("kind", Relstore.Value.Int (Prov_edge.kind_code kind));
             ])
      | _ -> ())
    t.nodes;
  ignore store;
  {
    visits = size t;
    parent_pointer_bytes;
    edge_table_bytes = Relstore.Table.total_size table;
  }
