(** Download lineage (§2.4): path queries over ancestry.

    "Find the first ancestor of this file that the user is likely to
    recognize" and "find all descendants of this page that are
    downloads."  Both walk only causal edges ([Same_time] is contextual
    and never part of lineage). *)

type recognizer = int -> bool
(** Judges whether the user would recognize a node. *)

val default_recognizer : ?min_visits:int -> Prov_store.t -> recognizer
(** Recognizable (per §2.4, "in terms of history"): a page the user has
    visited at least [min_visits] times (default 3), any bookmark, any
    search term (one's own queries are always recognizable), or a page
    the user ever navigated to by typing. *)

type ancestry = {
  ancestors : (int * int) list;  (** (node, distance), nearest first *)
  truncated : bool;
  elapsed_ms : float;
}

val ancestors : ?budget:Query_budget.t -> ?max_depth:int -> Prov_store.t -> int -> ancestry
(** Breadth-first over causal in-edges — the paper's implementation of
    download lineage. *)

type origin = {
  node : int;  (** the recognizable ancestor *)
  distance : int;
  path : int list;  (** from the queried node back to [node] *)
  truncated : bool;
  elapsed_ms : float;
}

val first_recognizable :
  ?budget:Query_budget.t ->
  ?recognizer:recognizer ->
  Prov_store.t ->
  int ->
  origin option
(** The nearest recognizable ancestor with the action path leading to
    it.  [None] when lineage is exhausted (or truncated) without a
    match. *)

type descendants = {
  downloads : int list;  (** download nodes, ascending *)
  visited : int;  (** nodes expanded *)
  truncated : bool;
  elapsed_ms : float;
}

val downloads_descending :
  ?budget:Query_budget.t -> Prov_store.t -> int -> descendants
(** All download nodes reachable forward from a node — "if the user
    decides a page is untrusted, find all downloads descending from that
    page and check them" (§2.4). *)

val describe_path : Prov_store.t -> int list -> string list
(** Human-readable rendering of a lineage path, one line per node. *)
