(** Relational image of the provenance graph (§4).

    The paper's prototype stored heterogeneous provenance objects "as
    homogeneous graph nodes" in a SQLite schema modelled on Places and
    measured 39.5 % storage overhead over Places.  This module is that
    schema over {!Relstore}: three tables — [prov_node], [prov_edge],
    [prov_attr] — plus the indexes a query engine needs.  Byte sizes
    come from {!Relstore.Database.total_size}, so the E2 overhead
    measurement compares like with like. *)

val to_database : Prov_store.t -> Relstore.Database.t
(** Serialize the store into a fresh relational database.  Two
    normalizations keep the image Places-comparable: visit rows do not
    repeat their page's url/title (recovered through the [Instance]
    edge), and [Same_time] edges are not written at all — they are
    derivable from the persisted open/close stamps ({!Time_edges}). *)

val of_database : Relstore.Database.t -> Prov_store.t
(** Rebuild an in-memory store (graph + URL/query lookup tables) from a
    relational image, including re-deriving [Same_time] edges from the
    stored intervals.  Engine-id mappings are session state and are not
    round-tripped.  Raises {!Relstore.Errors.Corrupt} on malformed
    images. *)

val node_table : string
val edge_table : string
val attr_table : string
