(** Provenance-preserving history expiration.

    Browsers expire old history; a provenance store cannot simply drop
    old rows without severing the lineage of everything derived from
    them (§2.4's forensics would dead-end at the expiry horizon).  The
    §4 privacy position — keep the data local, keep less of it — needs
    an expiry that is *summarizing* rather than destructive.

    The strategy reuses the §3.1 observation behind {!Versioning}: old
    visit *instances* carry per-event detail (exact times, tabs,
    transitions), but their page-level structure can be summarized.
    [expire] drops visit instances older than the cutoff and replaces
    the traversals among them with page→page [Summary] edges (stored as
    time-stamped {!Prov_edge.Link_traversal} rows between page nodes),
    so reachability questions — "do downloads descend from this page?",
    "does this file's lineage reach a recognizable page?" — keep working
    across the horizon while the per-visit detail is forgotten. *)

type outcome = {
  store : Prov_store.t;  (** the expired store (fresh; input untouched) *)
  expired_visits : int;
  summary_edges : int;  (** page→page edges standing in for them *)
  kept_nodes : int;
}

val expire : cutoff:int -> Prov_store.t -> outcome
(** Drop displayed and non-displayed visit instances whose open time is
    before [cutoff].  Pages, search terms, bookmarks, downloads and
    forms are never dropped (they are small and are the recognizable
    anchors); edges incident to expired visits are summarized at page
    level.  Edges among kept nodes are preserved verbatim. *)

val summarized_page_edges :
  cutoff:int -> Prov_store.t -> (int * int * int) list
(** The [(src_page, dst_page, time)] summaries [expire] would add —
    exposed for testing. *)
