(** Provenance node taxonomy (§3.3, §3.4).

    Every kind of history object — pages, page-visit instances,
    bookmarks, downloads, search terms, form submissions — is a node of
    one homogeneous graph, so queries never join heterogeneous tables. *)

type kind =
  | Page of { url : string; title : string }
      (** the unversioned page object *)
  | Visit of {
      url : string;
      title : string;
      transition : Browser.Transition.t;
      tab : int;
    }  (** one page-visit instance — the version node that breaks cycles (§3.1) *)
  | Bookmark of { title : string; url : string }
  | Download of { source_url : string; target_path : string }
  | Search_term of { query : string }
      (** a user-generated descriptor in the lineage of every page it
          produced (§3.3) *)
  | Form_submission of { fields : (string * string) list }

type t = {
  id : int;
  kind : kind;
  time : int option;  (** creation/open time where meaningful *)
  close_time : int option;  (** when a visit stopped being displayed (§3.2) *)
}

val kind_code : kind -> int
(** Stable small integer per constructor, for relational storage. *)

val kind_label : kind -> string

val text_terms : t -> string list
(** The node's searchable text: title+URL terms for pages/visits/
    bookmarks, query terms for search terms, file name terms for
    downloads, field values for forms. *)

val display : t -> string
(** Short human-readable description for query output. *)

val is_page : t -> bool
val is_visit : t -> bool
val is_download : t -> bool
val is_search_term : t -> bool

val url_of : t -> string option
(** The URL carried by page/visit/bookmark/download nodes. *)

val pp : Format.formatter -> t -> unit
