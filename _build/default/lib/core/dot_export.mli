(** GraphViz DOT export of provenance (sub)graphs.

    The paper points at visual interfaces over history graphs (Ayers &
    Stasko, §3.1); this is the universal interchange for them.  Node
    shapes encode the §3.3 taxonomy (pages are boxes, visits ellipses,
    search terms diamonds, downloads notes…), edge styles the §3.1–3.2
    relationship classes (dashed = redirect/embed, dotted = time). *)

val node_attributes : Prov_node.t -> (string * string) list
(** shape/label/style per node kind — exposed for testing. *)

val edge_attributes : Prov_edge.t -> (string * string) list

val export :
  ?max_nodes:int ->
  ?include_time_edges:bool ->
  Prov_store.t ->
  roots:int list ->
  string
(** The causal neighborhood around [roots] (both directions, breadth
    first, up to [max_nodes] nodes, default 150) as a DOT digraph.
    [include_time_edges] (default false) also draws [Same_time] edges
    among included nodes. *)

val export_lineage : Prov_store.t -> Lineage.origin -> string
(** Just a lineage path, as a DOT chain — the "how did I get this file"
    picture. *)

val save : path:string -> string -> unit
(** Write a DOT string to a file. *)
