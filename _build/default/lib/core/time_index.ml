type t = {
  intervals : (int, int * int option) Hashtbl.t;
  mutable sorted : (int * int * int option) array option;
      (* (opened, node, closed) sorted by opened; invalidated on writes *)
}

let create () = { intervals = Hashtbl.create 1024; sorted = None }

let add t ~node ~opened =
  Hashtbl.replace t.intervals node (opened, None);
  t.sorted <- None

let close t ~node ~closed =
  match Hashtbl.find_opt t.intervals node with
  | None -> ()
  | Some (opened, _) ->
    Hashtbl.replace t.intervals node (opened, Some (max opened closed));
    t.sorted <- None

let interval t node = Hashtbl.find_opt t.intervals node
let size t = Hashtbl.length t.intervals

let sorted t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr =
      Array.of_list
        (Hashtbl.fold (fun node (o, c) acc -> (o, node, c) :: acc) t.intervals [])
    in
    Array.sort compare arr;
    t.sorted <- Some arr;
    arr

let intersects (o, c) ~start ~stop =
  o <= stop && match c with None -> true | Some c -> c >= start

let in_window t ~start ~stop =
  let arr = sorted t in
  (* Entries are sorted by open time; anything opening after [stop]
     cannot intersect, so stop scanning there. *)
  let hits = ref [] in
  (try
     Array.iter
       (fun (o, node, c) ->
         if o > stop then raise Exit
         else if intersects (o, c) ~start ~stop then hits := node :: !hits)
       arr
   with Exit -> ());
  List.sort Int.compare !hits

let currently_open t ~at = in_window t ~start:at ~stop:at

let co_open t ~node =
  match interval t node with
  | None -> []
  | Some (o, c) ->
    let stop = match c with None -> max_int | Some c -> c in
    List.filter (fun other -> other <> node) (in_window t ~start:o ~stop)

let overlap t a b =
  match (interval t a, interval t b) with
  | Some (oa, ca), Some (ob, cb) ->
    let stop_a = match ca with None -> max_int | Some c -> c in
    let stop_b = match cb with None -> max_int | Some c -> c in
    oa <= stop_b && ob <= stop_a
  | _ -> false

let direction t a b =
  match (interval t a, interval t b) with
  | Some (oa, _), Some (ob, _) ->
    if oa <= ob then Some (a, b) else Some (b, a)
  | _ -> None
