type t = { id : int; start : int; stop : int; visits : int list }

let displayed_visits_chronological store =
  let all =
    Provgraph.Digraph.fold_nodes (Prov_store.graph store) ~init:[]
      ~f:(fun acc id n ->
        if Time_edges.displayed_visit n then
          match n.Prov_node.time with
          | Some opened -> (opened, id, Option.value ~default:opened n.Prov_node.close_time) :: acc
          | None -> acc
        else acc)
  in
  List.sort compare all

let detect ?(gap = 1800) store =
  let visits = displayed_visits_chronological store in
  let close_session id start stop acc_visits sessions =
    { id; start; stop; visits = List.rev acc_visits } :: sessions
  in
  let rec go visits current sessions =
    match (visits, current) with
    | [], None -> List.rev sessions
    | [], Some (id, start, stop, acc) -> List.rev (close_session id start stop acc sessions)
    | (opened, node, closed) :: rest, None ->
      go rest (Some (List.length sessions, opened, closed, [ node ])) sessions
    | (opened, node, closed) :: rest, Some (id, start, stop, acc) ->
      if opened - stop > gap then
        go rest
          (Some (id + 1, opened, closed, [ node ]))
          (close_session id start stop acc sessions)
      else go rest (Some (id, start, max stop closed, node :: acc)) sessions
  in
  go visits None []

let at sessions ~time =
  List.find_opt (fun s -> s.start <= time && time <= s.stop) sessions

let visit_count s = List.length s.visits
let duration s = s.stop - s.start

let top_terms ?(limit = 5) store s =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun visit ->
      match Prov_store.node_opt store visit with
      | Some n ->
        List.iter
          (fun term ->
            Hashtbl.replace counts term
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts term)))
          (List.sort_uniq String.compare (Prov_node.text_terms n))
      | None -> ())
    s.visits;
  let all = Hashtbl.fold (fun term n acc -> (term, n) :: acc) counts [] in
  List.filteri
    (fun i _ -> i < limit)
    (List.sort
       (fun (ta, na) (tb, nb) ->
         let c = Int.compare nb na in
         if c <> 0 then c else String.compare ta tb)
       all)

let matching ?(limit = 5) index sessions query =
  let store = Prov_text_index.store index in
  let hits = Prov_text_index.search ~limit:50 index query in
  let page_score = Hashtbl.create 32 in
  List.iter (fun (node, s) -> Hashtbl.replace page_score node s) hits;
  let session_score s =
    List.fold_left
      (fun acc visit ->
        match Prov_store.page_of_visit store visit with
        | Some page -> acc +. Option.value ~default:0.0 (Hashtbl.find_opt page_score page)
        | None -> acc)
      0.0 s.visits
  in
  let scored =
    List.filter_map
      (fun s ->
        let score = session_score s in
        if score > 0.0 then Some (s, score) else None)
      sessions
  in
  List.filteri
    (fun i _ -> i < limit)
    (List.sort
       (fun (sa, xa) (sb, xb) ->
         let c = Float.compare xb xa in
         if c <> 0 then c else Int.compare sa.id sb.id)
       scored)

let describe store s =
  let terms = String.concat ", " (List.map fst (top_terms store s)) in
  Printf.sprintf "session %d: t=%d..%d (%ds), %d visits, about: %s" s.id s.start s.stop
    (duration s) (visit_count s) terms
