(** Browsing-session segmentation.

    Time relationships (§3.2) make sessions recoverable: displayed
    visits sorted by open time split wherever the idle gap exceeds a
    threshold.  Sessions give time-contextual search a natural unit
    ("that evening when..."), summarize recognizably ("mostly wine,
    some travel"), and let the history tree group its roots. *)

type t = {
  id : int;  (** 0-based, chronological *)
  start : int;  (** first open time *)
  stop : int;  (** last close (or open) time *)
  visits : int list;  (** displayed visit nodes, chronological *)
}

val detect : ?gap:int -> Prov_store.t -> t list
(** Segment the store's displayed visits ([gap] defaults to 1800 s of
    idle time).  Chronological. *)

val at : t list -> time:int -> t option
(** The session covering an instant, if any. *)

val visit_count : t -> int
val duration : t -> int

val top_terms : ?limit:int -> Prov_store.t -> t -> (string * int) list
(** The session's most frequent title/URL terms ([limit] defaults to 5)
    — a cheap summary of "what this session was about". *)

val matching :
  ?limit:int -> Prov_text_index.t -> t list -> string -> (t * float) list
(** Sessions ranked by how strongly their visits' pages match a query —
    "find the evening I was researching X".  Score is the sum of the
    member pages' text scores. *)

val describe : Prov_store.t -> t -> string
(** One-line rendering: span, size, top terms. *)
