module R = Relstore
module Digraph = Provgraph.Digraph

let node_table = "prov_node"
let edge_table = "prov_edge"
let attr_table = "prov_attr"

let vint n = R.Value.Int n
let vtext s = R.Value.Text s
let vint_opt = function None -> R.Value.Null | Some n -> R.Value.Int n
let vtext_opt = function None -> R.Value.Null | Some s -> R.Value.Text s

(* Node/download/visit ids are the table rowids, SQLite-style (INTEGER
   PRIMARY KEY aliases the rowid); provenance node ids are contiguous
   from 1 and written in ascending order so rowid = node id. *)
let node_schema =
  R.Schema.make ~name:node_table
    [
      R.Column.make "kind" R.Value.Tint;
      R.Column.make "label" R.Value.Ttext;
      R.Column.make ~nullable:true "url" R.Value.Ttext;
      R.Column.make ~nullable:true "aux" R.Value.Ttext;
      R.Column.make ~nullable:true "transition" R.Value.Tint;
      R.Column.make ~nullable:true "tab" R.Value.Tint;
      R.Column.make ~nullable:true "page" R.Value.Tint;
      R.Column.make ~nullable:true "time" R.Value.Tint;
      R.Column.make ~nullable:true "close_time" R.Value.Tint;
    ]

let edge_schema =
  R.Schema.make ~name:edge_table
    [
      R.Column.make "src" R.Value.Tint;
      R.Column.make "dst" R.Value.Tint;
      R.Column.make "kind" R.Value.Tint;
      R.Column.make "time" R.Value.Tint;
    ]

let attr_schema =
  R.Schema.make ~name:attr_table
    [
      R.Column.make "node" R.Value.Tint;
      R.Column.make "name" R.Value.Ttext;
      R.Column.make "value" R.Value.Ttext;
    ]

let node_row ~page (n : Prov_node.t) =
  let label, url, aux, transition, tab =
    match n.Prov_node.kind with
    | Prov_node.Page { url; title } -> (title, Some url, None, None, None)
    | Prov_node.Visit { url = _; title = _; transition; tab } ->
      (* Normalized like Places: a visit's url/title live on its page
         node, referenced by the [page] column (the factorized form of
         the Instance edge, cf. Chapman et al. on factorization). *)
      ("", None, None, Some (Browser.Transition.to_code transition), Some tab)
    | Prov_node.Bookmark { title; url } -> (title, Some url, None, None, None)
    | Prov_node.Download { source_url; target_path } ->
      ("", Some source_url, Some target_path, None, None)
    | Prov_node.Search_term { query } -> (query, None, None, None, None)
    | Prov_node.Form_submission _ -> ("", None, None, None, None)
  in
  [
    ("kind", vint (Prov_node.kind_code n.Prov_node.kind));
    ("label", vtext label);
    ("url", vtext_opt url);
    ("aux", vtext_opt aux);
    ("transition", vint_opt transition);
    ("tab", vint_opt tab);
    ("page", vint_opt page);
    ("time", vint_opt n.Prov_node.time);
    ("close_time", vint_opt n.Prov_node.close_time);
  ]

let to_database store =
  let db = R.Database.create ~name:"browser_provenance" in
  let nodes = R.Database.create_table db node_schema in
  R.Table.add_index nodes ~name:"node_url" ~columns:[ "url" ];
  let edges = R.Database.create_table db edge_schema in
  R.Table.add_index edges ~name:"edge_src" ~columns:[ "src" ];
  R.Table.add_index edges ~name:"edge_dst" ~columns:[ "dst" ];
  let attrs = R.Database.create_table db attr_schema in
  R.Table.add_index attrs ~name:"attr_node" ~columns:[ "node" ];
  let g = Prov_store.graph store in
  (* Node ids are the rowids; stores whose id space became sparse (e.g.
     after {!Retention.expire}) are compacted on the way out, keeping
     the rowid-as-id invariant of the SQLite-style format.  For a
     contiguous store the remapping is the identity. *)
  let remap = Hashtbl.create (Digraph.node_count g) in
  List.iteri (fun i id -> Hashtbl.replace remap id (i + 1)) (Digraph.nodes g);
  let new_id id = Hashtbl.find remap id in
  List.iter
    (fun id ->
      let n = Digraph.node g id in
      let page =
        if Prov_node.is_visit n then
          Option.map new_id (Prov_store.page_of_visit store id)
        else None
      in
      let rowid = R.Table.insert_fields nodes (node_row ~page n) in
      assert (rowid = new_id id);
      match n.Prov_node.kind with
      | Prov_node.Form_submission { fields } ->
        List.iter
          (fun (name, value) ->
            ignore
              (R.Table.insert_fields attrs
                 [ ("node", vint rowid); ("name", vtext name); ("value", vtext value) ]))
          fields
      | _ -> ())
    (Digraph.nodes g);
  (* Same_time edges are derivable from the visit open/close stamps
     (§3.2) and are session data — not persisted (see {!Time_edges});
     Instance edges are factorized into the visit rows' [page] column. *)
  Digraph.iter_edges g (fun src dst (e : Prov_edge.t) ->
      if e.Prov_edge.kind <> Prov_edge.Same_time && e.Prov_edge.kind <> Prov_edge.Instance
      then
        ignore
          (R.Table.insert_fields edges
             [
               ("src", vint (new_id src));
               ("dst", vint (new_id dst));
               ("kind", vint (Prov_edge.kind_code e.Prov_edge.kind));
               ("time", vint e.Prov_edge.time);
             ]));
  db

let require_text what = function
  | Some s -> s
  | None -> R.Errors.corrupt "prov_node: missing %s" what

let kind_of_row schema ~rowid row attrs_of =
  let text_opt name = R.Row.text_opt schema row name in
  let int_opt name = R.Row.int_opt schema row name in
  let label = R.Row.text schema row "label" in
  match R.Row.int schema row "kind" with
  | 0 -> Prov_node.Page { url = require_text "url" (text_opt "url"); title = label }
  | 1 ->
    let transition =
      match int_opt "transition" with
      | Some c -> Browser.Transition.of_code c
      | None -> R.Errors.corrupt "prov_node: visit without transition"
    in
    (* url/title are filled in from the page node once edges are loaded. *)
    Prov_node.Visit
      {
        url = Option.value ~default:"" (text_opt "url");
        title = label;
        transition;
        tab = Option.value ~default:0 (int_opt "tab");
      }
  | 2 -> Prov_node.Bookmark { title = label; url = require_text "url" (text_opt "url") }
  | 3 ->
    Prov_node.Download
      {
        source_url = require_text "url" (text_opt "url");
        target_path = require_text "aux" (text_opt "aux");
      }
  | 4 -> Prov_node.Search_term { query = label }
  | 5 -> Prov_node.Form_submission { fields = attrs_of rowid }
  | k -> R.Errors.corrupt "prov_node: unknown kind %d" k

let of_database db =
  let store = Prov_store.create () in
  let nodes = R.Database.table db node_table in
  let edges = R.Database.table db edge_table in
  let attrs = R.Database.table db attr_table in
  let attrs_of node_id =
    List.map
      (fun (_, row) ->
        (R.Row.text attr_schema row "name", R.Row.text attr_schema row "value"))
      (R.Table.find_by attrs ~columns:[ "node" ] [ vint node_id ])
  in
  let page_refs = ref [] in
  List.iter
    (fun (id, row) ->
      let kind = kind_of_row node_schema ~rowid:id row attrs_of in
      let time = R.Row.int_opt node_schema row "time" in
      (match R.Row.int_opt node_schema row "page" with
      | Some page -> page_refs := (page, id, Option.value ~default:0 time) :: !page_refs
      | None -> ());
      Prov_store.restore_node store
        {
          Prov_node.id;
          kind;
          time;
          close_time = R.Row.int_opt node_schema row "close_time";
        })
    (R.Table.rows nodes);
  (* Unfactorize the page column back into Instance edges. *)
  List.iter
    (fun (page, visit, time) ->
      Prov_store.restore_edge store ~src:page ~dst:visit { Prov_edge.kind = Prov_edge.Instance; time })
    (List.rev !page_refs);
  List.iter
    (fun (_, row) ->
      Prov_store.restore_edge store
        ~src:(R.Row.int edge_schema row "src")
        ~dst:(R.Row.int edge_schema row "dst")
        {
          Prov_edge.kind = Prov_edge.kind_of_code (R.Row.int edge_schema row "kind");
          time = R.Row.int edge_schema row "time";
        })
    (R.Table.rows edges);
  (* Denormalize visit url/title back from their page nodes.  Collect
     first, then apply: restoring while iterating would mutate the node
     table under the iteration. *)
  let g = Prov_store.graph store in
  let fixups =
    Provgraph.Digraph.fold_nodes g ~init:[] ~f:(fun acc id n ->
        match n.Prov_node.kind with
        | Prov_node.Visit v -> begin
          match Prov_store.page_of_visit store id with
          | Some page -> begin
            match (Prov_store.node store page).Prov_node.kind with
            | Prov_node.Page { url; title } ->
              { n with Prov_node.kind = Prov_node.Visit { v with url; title } } :: acc
            | _ -> acc
          end
          | None -> acc
        end
        | _ -> acc)
  in
  List.iter (Prov_store.restore_node store) fixups;
  (* Rebuild the session-only time relationships from the persisted
     open/close stamps. *)
  ignore (Time_edges.derive store);
  store
