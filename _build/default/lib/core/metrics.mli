(** Retrieval-quality metrics for the use-case experiments.

    The paper argues its queries return the right answers anecdotally;
    with a synthetic workload we have recorded ground truth and can
    score properly. *)

val rank_of : equal:('a -> 'a -> bool) -> 'a -> 'a list -> int option
(** 1-based rank of an item in a result list. *)

val reciprocal_rank : int option -> float
(** [1/rank]; 0 for misses. *)

val mrr : int option list -> float
(** Mean reciprocal rank over queries. *)

val hit_at : int -> int option list -> float
(** Fraction of queries whose rank is within [k]. *)

val precision_recall : relevant:int list -> retrieved:int list -> float * float
(** Set precision and recall (both 1.0 when [relevant] and [retrieved]
    are empty). *)

val f1 : precision:float -> recall:float -> float

val mean_rank : int option list -> float option
(** Mean of the found ranks; [None] if nothing was found. *)
