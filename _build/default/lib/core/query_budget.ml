type t = { deadline_ms : float option; node_budget : int option }

let unlimited = { deadline_ms = None; node_budget = None }
let paper_default = { deadline_ms = Some 200.0; node_budget = Some 50_000 }
let deadline ms = { deadline_ms = Some ms; node_budget = None }

type running = { budget : t; started_ns : int64; mutable nodes_used : int }

let start budget = { budget; started_ns = Provkit_util.Timing.now_ns (); nodes_used = 0 }

let elapsed_ms r =
  Int64.to_float (Int64.sub (Provkit_util.Timing.now_ns ()) r.started_ns) /. 1e6

let out_of_time r =
  match r.budget.deadline_ms with None -> false | Some d -> elapsed_ms r > d

let consume_nodes r n = r.nodes_used <- r.nodes_used + n

let remaining_nodes r =
  match r.budget.node_budget with
  | None -> None
  | Some cap -> Some (max 0 (cap - r.nodes_used))

let exhausted r = out_of_time r || remaining_nodes r = Some 0

let was_truncated r traversal_truncated = traversal_truncated || exhausted r
