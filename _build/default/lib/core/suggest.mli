(** Provenance-aware location-bar suggestions.

    The baseline awesome bar ({!Browser.Awesomebar}) ranks by text match
    and frecency alone, so "rose" suggests the globally most-visited
    rose page no matter what the user is doing.  With provenance, the
    pages *contextually related to what is on screen right now* — graph
    neighbors of the current visits — can be boosted: the gardener
    typing "rose" while reading gardening pages sees her gardening
    rosebud page first even if a film page is more visited overall.
    This is the §2.2 personalization idea pointed at the §1 location
    bar, computed entirely locally. *)

type config = {
  frecency_weight : float;  (** weight of the visit-count prior *)
  context_weight : float;  (** weight of graph proximity to the context *)
  max_hops : int;
  decay : float;
}

val default_config : config

type suggestion = {
  page : int;  (** page node id *)
  url : string;
  title : string;
  score : float;
  base_score : float;  (** the frecency-like prior *)
  context_score : float;  (** proximity to the supplied context *)
}

val suggest :
  ?config:config ->
  ?limit:int ->
  ?context:int list ->
  Prov_store.t ->
  string ->
  suggestion list
(** [suggest store typed] returns non-hidden pages whose URL or title
    contains [typed] (case-insensitive).  [context] is a list of store
    nodes representing what the user is currently looking at (visit or
    page nodes — typically the current tabs' visits); graph proximity to
    them re-ranks the candidates.  Without context this degrades to the
    frecency-style baseline.  [limit] defaults to 6. *)
