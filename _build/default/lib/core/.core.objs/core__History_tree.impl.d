lib/core/history_tree.ml: Buffer Hashtbl Int List Option Printf Prov_edge Prov_node Prov_store Provgraph Provkit_util Relstore Time_edges
