lib/core/prov_edge.ml: Format List Printf
