lib/core/prov_store.mli: Browser Format Prov_edge Prov_node Provgraph
