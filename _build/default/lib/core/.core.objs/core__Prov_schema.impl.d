lib/core/prov_schema.ml: Browser Hashtbl List Option Prov_edge Prov_node Prov_store Provgraph Relstore Time_edges
