lib/core/metrics.mli:
