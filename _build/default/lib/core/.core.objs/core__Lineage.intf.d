lib/core/lineage.mli: Prov_store Query_budget
