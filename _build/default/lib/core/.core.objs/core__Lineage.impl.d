lib/core/lineage.ml: Browser Hashtbl Int List Printf Prov_edge Prov_node Prov_store Provgraph Query_budget Queue Time_edges
