lib/core/metrics.ml: Fun Int List Set
