lib/core/contextual_search.ml: Float Hashtbl Int List Option Prov_edge Prov_node Prov_store Prov_text_index Provgraph Query_budget
