lib/core/prov_text_index.ml: List Prov_node Prov_store Provgraph Textindex
