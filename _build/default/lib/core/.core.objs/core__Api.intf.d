lib/core/api.mli: Browser Capture Contextual_search Lineage Personalize Prov_store Prov_text_index Query_budget Relstore Time_index Time_search
