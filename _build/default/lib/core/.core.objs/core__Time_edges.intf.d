lib/core/time_edges.mli: Prov_node Prov_store Time_index
