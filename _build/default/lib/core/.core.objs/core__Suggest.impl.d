lib/core/suggest.ml: Float Hashtbl Int List Option Prov_edge Prov_node Prov_store Provgraph Provkit_util String
