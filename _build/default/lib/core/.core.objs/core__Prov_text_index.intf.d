lib/core/prov_text_index.mli: Prov_store
