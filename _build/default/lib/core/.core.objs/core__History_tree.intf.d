lib/core/history_tree.mli: Prov_edge Prov_store
