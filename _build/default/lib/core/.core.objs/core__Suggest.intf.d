lib/core/suggest.mli: Prov_store
