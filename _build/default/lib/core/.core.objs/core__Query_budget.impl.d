lib/core/query_budget.ml: Int64 Provkit_util
