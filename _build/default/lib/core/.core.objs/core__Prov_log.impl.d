lib/core/prov_log.ml: Browser Buffer Char Filename Fun List Option Printf Prov_edge Prov_node Prov_schema Prov_store Provkit_util Relstore Scanf String Sys
