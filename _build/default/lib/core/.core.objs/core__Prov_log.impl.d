lib/core/prov_log.ml: Browser Buffer Char Fun List Prov_edge Prov_node Prov_schema Prov_store Relstore String
