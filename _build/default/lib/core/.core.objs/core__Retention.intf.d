lib/core/retention.mli: Prov_store
