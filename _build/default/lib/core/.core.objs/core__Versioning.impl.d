lib/core/versioning.ml: Option Prov_edge Prov_node Prov_schema Prov_store Provgraph Relstore
