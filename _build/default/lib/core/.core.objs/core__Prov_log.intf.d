lib/core/prov_log.mli: Buffer Prov_edge Prov_node Prov_store Provkit_util Relstore
