lib/core/prov_log.mli: Buffer Prov_edge Prov_node Prov_store Relstore
