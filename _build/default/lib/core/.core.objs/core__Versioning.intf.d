lib/core/versioning.mli: Prov_edge Prov_node Prov_store Provgraph Relstore
