lib/core/capture.mli: Browser Prov_store Time_index
