lib/core/prov_node.mli: Browser Format
