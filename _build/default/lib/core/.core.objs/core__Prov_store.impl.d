lib/core/prov_store.ml: Browser Format Hashtbl Int List Option Prov_edge Prov_node Provgraph String
