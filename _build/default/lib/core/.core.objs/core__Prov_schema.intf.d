lib/core/prov_schema.mli: Prov_store Relstore
