lib/core/dot_export.mli: Lineage Prov_edge Prov_node Prov_store
