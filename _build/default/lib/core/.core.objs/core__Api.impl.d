lib/core/api.ml: Browser Capture Contextual_search Lineage Personalize Prov_node Prov_schema Prov_store Prov_text_index Time_search
