lib/core/personalize.ml: Contextual_search Float Hashtbl List Option Prov_node Prov_store Prov_text_index Query_budget String Textindex
