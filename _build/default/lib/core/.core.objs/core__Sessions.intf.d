lib/core/sessions.mli: Prov_store Prov_text_index
