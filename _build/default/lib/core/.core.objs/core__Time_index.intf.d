lib/core/time_index.mli:
