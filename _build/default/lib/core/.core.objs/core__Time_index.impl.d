lib/core/time_index.ml: Array Hashtbl Int List
