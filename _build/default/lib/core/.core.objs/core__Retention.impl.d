lib/core/retention.ml: Hashtbl List Prov_edge Prov_node Prov_store Provgraph
