lib/core/prov_edge.mli: Format
