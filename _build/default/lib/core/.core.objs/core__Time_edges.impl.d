lib/core/time_edges.ml: Browser Hashtbl Int List Prov_edge Prov_node Prov_store Provgraph Time_index
