lib/core/capture.ml: Browser Hashtbl Int List Option Prov_edge Prov_store Time_index Webmodel
