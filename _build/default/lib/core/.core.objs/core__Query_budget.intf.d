lib/core/query_budget.mli:
