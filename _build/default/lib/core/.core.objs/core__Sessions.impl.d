lib/core/sessions.ml: Float Hashtbl Int List Option Printf Prov_node Prov_store Prov_text_index Provgraph String Time_edges
