lib/core/dot_export.ml: Browser Buffer Fun Hashtbl Lineage List Printf Prov_edge Prov_node Prov_store Provgraph Provkit_util String
