lib/core/contextual_search.mli: Prov_text_index Query_budget
