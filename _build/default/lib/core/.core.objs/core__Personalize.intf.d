lib/core/personalize.mli: Contextual_search Prov_text_index Query_budget
