lib/core/time_search.mli: Prov_text_index Query_budget Time_index
