lib/core/prov_node.ml: Browser Format List Printf String Textindex
