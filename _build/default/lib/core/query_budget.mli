(** Query budgets: the mechanism behind §4's "complete in less than
    200 ms in the majority of cases and can be bound to that time in the
    remaining cases."

    A budget couples a wall-clock deadline with a node-expansion cap.
    Queries check [out_of_time] between phases and pass
    [remaining_nodes] into graph traversals; results report whether they
    were truncated. *)

type t = { deadline_ms : float option; node_budget : int option }

val unlimited : t

val paper_default : t
(** 200 ms deadline and a 50,000-node expansion cap. *)

val deadline : float -> t
(** Deadline only. *)

type running

val start : t -> running
val elapsed_ms : running -> float
val out_of_time : running -> bool

val consume_nodes : running -> int -> unit
(** Charge node expansions against the budget. *)

val remaining_nodes : running -> int option
(** [None] when unbounded; [Some 0] when exhausted. *)

val exhausted : running -> bool
(** Deadline passed or node budget spent. *)

val was_truncated : running -> bool -> bool
(** Combine a traversal's truncation flag with budget exhaustion. *)
