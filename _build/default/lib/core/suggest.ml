module Digraph = Provgraph.Digraph
module Neighborhood = Provgraph.Neighborhood

type config = {
  frecency_weight : float;
  context_weight : float;
  max_hops : int;
  decay : float;
}

let default_config =
  { frecency_weight = 1.0; context_weight = 4.0; max_hops = 2; decay = 0.5 }

type suggestion = {
  page : int;
  url : string;
  title : string;
  score : float;
  base_score : float;
  context_score : float;
}

let matching_pages store ~typed =
  let needle = String.lowercase_ascii typed in
  Digraph.fold_nodes (Prov_store.graph store) ~init:[] ~f:(fun acc id n ->
      match n.Prov_node.kind with
      | Prov_node.Page { url; title }
        when (Provkit_util.Strutil.contains_substring ~needle (String.lowercase_ascii url)
             || Provkit_util.Strutil.contains_substring ~needle (String.lowercase_ascii title))
             && not (Prov_store.page_hidden store id) -> (id, url, title) :: acc
      | _ -> acc)

let suggest ?(config = default_config) ?(limit = 6) ?(context = []) store typed =
  if String.trim typed = "" then []
  else begin
    let candidates = matching_pages store ~typed in
    (* Context proximity: decayed expansion from the context nodes.  The
       candidates are few, but the expansion is shared, so do it once. *)
    let context_mass =
      match context with
      | [] -> Hashtbl.create 1
      | _ ->
        let seeds = List.map (fun node -> (node, 1.0)) context in
        let nconfig =
          {
            Neighborhood.default_config with
            Neighborhood.max_hops = config.max_hops;
            decay = config.decay;
          }
        in
        (* Never follow Same_time edges for suggestions: the context IS
           the present, temporal neighbors of the past add noise. *)
        let follow ~src:_ ~dst:_ (e : Prov_edge.t) =
          Prov_edge.is_causal e.Prov_edge.kind
        in
        fst (Neighborhood.expand ~config:nconfig ~follow (Prov_store.graph store) ~seeds)
    in
    let context_of page =
      (* Mass may have landed on the page node or on its visit instances. *)
      let own = Option.value ~default:0.0 (Hashtbl.find_opt context_mass page) in
      List.fold_left
        (fun acc v -> acc +. Option.value ~default:0.0 (Hashtbl.find_opt context_mass v))
        own
        (Prov_store.visits_of_page store page)
    in
    let scored =
      List.map
        (fun (page, url, title) ->
          let base = log (1.0 +. float_of_int (Prov_store.page_visit_count store page)) in
          let ctx = context_of page in
          {
            page;
            url;
            title;
            base_score = base;
            context_score = ctx;
            score = (config.frecency_weight *. base) +. (config.context_weight *. ctx);
          })
        candidates
    in
    List.filteri
      (fun i _ -> i < limit)
      (List.sort
         (fun a b ->
           let c = Float.compare b.score a.score in
           if c <> 0 then c else Int.compare a.page b.page)
         scored)
  end
