module Prng = Provkit_util.Prng

type t = {
  seed : int;
  web : Webmodel.Web_graph.t;
  search_engine : Webmodel.Search_engine.t;
  engine : Browser.Engine.t;
  api : Core.Api.t;
  ff_capture : Core.Capture.t;
  trace : Browser.User_model.trace;
}

let build ?(web_config = Webmodel.Web_graph.default_config)
    ?(user_config = Browser.User_model.default_config) ~seed () =
  let rng = Prng.create seed in
  let web_rng = Prng.split rng in
  let user_rng = Prng.split rng in
  let web = Webmodel.Web_graph.generate ~config:web_config ~seed:(Prng.int web_rng 1_000_000_000) () in
  let search_engine = Webmodel.Search_engine.build web in
  let engine = Browser.Engine.create ~web ~search:search_engine () in
  (* Captures must subscribe before any browsing happens. *)
  let api = Core.Api.attach engine in
  let ff_capture = Core.Capture.attach ~config:Core.Capture.firefox_like engine in
  let trace = Browser.User_model.run ~config:user_config ~rng:user_rng engine in
  { seed; web; search_engine; engine; api; ff_capture; trace }

let default ?(seed = 42) () = build ~seed ()

let with_days ?(seed = 42) days =
  build ~user_config:{ Browser.User_model.default_config with Browser.User_model.days } ~seed ()

let store t = Core.Api.store t.api
let time_index t = Core.Api.time_index t.api
let places t = Browser.Engine.places t.engine

let page_node t web_page =
  let p = Webmodel.Web_graph.page t.web web_page in
  Core.Prov_store.page_of_url (store t)
    (Webmodel.Url.to_string p.Webmodel.Page_content.url)

let place_of_web_page t web_page =
  let p = Webmodel.Web_graph.page t.web web_page in
  Browser.Places_db.place_by_url (places t)
    (Webmodel.Url.to_string p.Webmodel.Page_content.url)
