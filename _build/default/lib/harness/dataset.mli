(** Dataset assembly: synthetic web + simulated search engine + browser
    engine + provenance capture + simulated user, wired in the right
    order and driven for a configurable number of days.

    Two captures observe the same event stream: the full provenance
    capture (the paper's proposal) and a Firefox-fidelity capture (what
    a 2009 browser actually keeps), so ablation experiments compare
    stores built from identical browsing. *)

type t = {
  seed : int;
  web : Webmodel.Web_graph.t;
  search_engine : Webmodel.Search_engine.t;
  engine : Browser.Engine.t;
  api : Core.Api.t;  (** full-capture provenance API *)
  ff_capture : Core.Capture.t;  (** Firefox-fidelity capture of the same events *)
  trace : Browser.User_model.trace;
}

val build :
  ?web_config:Webmodel.Web_graph.config ->
  ?user_config:Browser.User_model.config ->
  seed:int ->
  unit ->
  t
(** Generate the web, attach captures, run the user model. *)

val default : ?seed:int -> unit -> t
(** The standard 79-day dataset ([seed] defaults to 42). *)

val with_days : ?seed:int -> int -> t
(** The standard dataset scaled to a different number of days (for the
    E8 sweep). *)

val store : t -> Core.Prov_store.t
val time_index : t -> Core.Time_index.t
val places : t -> Browser.Places_db.t

val page_node : t -> int -> int option
(** Provenance page node for a synthetic web page id. *)

val place_of_web_page : t -> int -> Browser.Places_db.place option
(** Places row for a synthetic web page id. *)
