(** The experiment suite: one function per paper claim (see DESIGN.md's
    experiment index).  Each returns a {!Report.t}; [run_all] regenerates
    everything EXPERIMENTS.md records. *)

val e1_history_scale : Dataset.t -> Report.t
(** §3: "more than 25,000 nodes over the past 79 days". *)

val e2_storage_overhead : Dataset.t -> Report.t
(** §4: 39.5 % overhead over Places, < 5 MB absolute. *)

val e3_query_latency : ?samples:int -> Dataset.t -> Report.t
(** §4: all four use-case queries < 200 ms in the majority of cases,
    boundable in the rest. *)

val e4_contextual_quality : ?max_episodes:int -> Dataset.t -> Report.t
(** §2.1: contextual history search retrieves pages reached *via* a
    search term (rosebud -> Citizen Kane), textual baseline does not. *)

val e5_personalization : ?max_episodes:int -> Dataset.t -> Report.t
(** §2.2: provenance-derived query expansion disambiguates web search
    toward the user's sense of an ambiguous term. *)

val e6_time_context : Dataset.t -> Report.t
(** §2.3: "wine associated with plane tickets" retrieves the specific
    page better than a plain wine search. *)

val e7_download_lineage : ?max_episodes:int -> Dataset.t -> Report.t
(** §2.4: first recognizable ancestor and downloads-descending-from. *)

val e8_scaling : ?days_list:int list -> seed:int -> unit -> Report.t
(** Implied by §4's local-computation feasibility: latency and size
    across history sizes. *)

val e9_versioning : Dataset.t -> Report.t
(** §3.1 ablation: visit-instance node versioning vs page nodes with
    time-stamped edges. *)

val e10_redirect_ablation : ?max_episodes:int -> Dataset.t -> Report.t
(** §3.2 ablation: include/exclude redirect+embed and time edges in
    contextual expansion. *)

val e11_capture_ablation : ?max_episodes:int -> Dataset.t -> Report.t
(** §3.2/§3.3 ablation: full provenance capture vs Firefox-fidelity
    capture of the same browsing. *)

val e12_algorithm_ablation : ?max_episodes:int -> Dataset.t -> Report.t
(** §4 future work: decayed expansion vs personalized PageRank vs HITS
    on the focused subgraph, quality and latency. *)

val e13_history_tree : Dataset.t -> Report.t
(** §3.1: versioned navigation history is a forest; the parent-pointer
    encoding vs the relational edge table. *)

val e14_incremental_persistence : Dataset.t -> Report.t
(** The append-only provenance journal vs full snapshot rewrites,
    including crash-truncation recovery. *)

val e15_heterogeneous_joins : Dataset.t -> Report.t
(** §3.3: the same questions as multi-table Places joins and as
    one-graph queries — answered counts and latency. *)

val e16_crash_recovery : ?crash_points:int -> ?flip_points:int -> Dataset.t -> Report.t
(** Durability of the journal (extends E14): v2 framing overhead vs the
    unframed v1 image, prefix-consistent recovery across a sweep of
    injected crash points, and single-byte-flip detection rate. *)

val run_all : ?quick:bool -> seed:int -> unit -> Report.t list
(** Build the standard dataset and run every experiment.  [quick]
    shrinks sample counts and the scaling sweep (used by tests). *)
