lib/harness/report.ml: List Printf Provkit_util
