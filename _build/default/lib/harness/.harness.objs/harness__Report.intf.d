lib/harness/report.mli:
