lib/harness/experiments.mli: Dataset Report
