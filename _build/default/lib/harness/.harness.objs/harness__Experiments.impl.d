lib/harness/experiments.ml: Array Browser Char Core Dataset Fun Hashtbl Int List Option Printf Provgraph Provkit_util Queue Relstore Report String Textindex Webmodel
