lib/harness/dataset.ml: Browser Core Provkit_util Webmodel
