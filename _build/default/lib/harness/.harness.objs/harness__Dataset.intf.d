lib/harness/dataset.mli: Browser Core Webmodel
