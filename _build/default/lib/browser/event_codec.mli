(** Binary persistence for browser event streams.

    Recording the raw event stream once and replaying it into different
    consumers is how the ablation experiments compare captures on
    identical browsing; this codec makes such traces portable files.
    The format is deterministic and self-delimiting; decoding tolerates
    a truncated tail (crash semantics identical to {!Core.Prov_log}). *)

val encode_event : Buffer.t -> Event.t -> unit
val decode_event : string -> int ref -> Event.t
(** Raises {!Relstore.Errors.Corrupt} on malformed input. *)

val to_bytes : Event.t list -> string
val of_bytes : ?tolerate_truncation:bool -> string -> Event.t list
(** [tolerate_truncation] defaults to true: a partial final record is
    dropped rather than raising. *)

val save : path:string -> Event.t list -> unit
val load : path:string -> Event.t list

val replay : Event.t list -> (Event.t -> unit) list -> unit
(** Feed every event to every consumer, in order — e.g. a fresh
    [Places_db.apply_event] and a [Core.Capture.observer]. *)
