type t = { places : Places_db.t; mutable search : Textindex.Search.t }

type result = { place_id : int; score : float }

let place_terms (p : Places_db.place) =
  Textindex.Tokenizer.terms p.Places_db.title
  @ Textindex.Tokenizer.terms_of_url p.Places_db.url

let build_index places =
  let search = Textindex.Search.create () in
  List.iter
    (fun (p : Places_db.place) ->
      if not p.Places_db.hidden then
        Textindex.Search.index_terms search p.Places_db.place_id (place_terms p))
    (Places_db.places places);
  search

let build places = { places; search = build_index places }
let refresh t = t.search <- build_index t.places

let search ?(limit = 10) t query =
  let hits = Textindex.Search.query ~limit:(limit * 5) t.search query in
  let scored =
    List.map
      (fun (r : Textindex.Search.result) ->
        let p = Places_db.place t.places r.Textindex.Search.doc in
        (* Frecency boost mirrors the awesome bar: text match gates,
           frecency orders among matches. *)
        {
          place_id = r.Textindex.Search.doc;
          score = r.Textindex.Search.score *. (1.0 +. log (1.0 +. max 0.0 p.Places_db.frecency));
        })
      hits
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = Float.compare b.score a.score in
        if c <> 0 then c else Int.compare a.place_id b.place_id)
      scored
  in
  List.filteri (fun i _ -> i < limit) sorted
