(** The browser's event stream.

    Everything downstream — the Places baseline store and the provenance
    capture layer — consumes exactly these events.  The events carry
    *more* information than Firefox persists (close times, referrers for
    typed navigations, the query behind a search); Places deliberately
    drops those fields, the provenance layer keeps them.  That gap is
    the paper's §3.2 argument, and experiment E11 measures it. *)

type visit = {
  visit_id : int;  (** unique, engine-assigned *)
  time : int;  (** simulated unix seconds *)
  tab : int;
  page : int option;  (** synthetic web page id; [None] for SERPs *)
  url : Webmodel.Url.t;
  title : string;
  transition : Transition.t;
  referrer : int option;  (** visit_id that caused this one, if any *)
  via_bookmark : int option;  (** bookmark id when [transition = Bookmark] *)
}

type t =
  | Visit of visit
  | Close of { time : int; tab : int; visit_id : int }
      (** The visit stopped being displayed (navigation away or tab
          close).  Firefox records nothing for this. *)
  | Tab_opened of { time : int; tab : int; opener_tab : int option }
  | Tab_closed of { time : int; tab : int }
  | Bookmark_added of {
      time : int;
      bookmark_id : int;
      visit_id : int;  (** the visit being bookmarked *)
      url : Webmodel.Url.t;
      title : string;
    }
  | Search of {
      time : int;
      search_id : int;
      query : string;
      serp_visit : int;  (** visit id of the result page *)
    }
  | Download_started of {
      time : int;
      download_id : int;
      visit_id : int;  (** the Download-transition visit fetching the file *)
      source_visit : int;  (** visit of the page the user downloaded from *)
      url : Webmodel.Url.t;
      target_path : string;  (** local destination *)
    }
  | Form_submitted of {
      time : int;
      form_id : int;
      source_visit : int;
      result_visit : int;
      fields : (string * string) list;
    }

val time : t -> int
val describe : t -> string
(** One-line human-readable rendering, used by example programs. *)
