type visit = {
  visit_id : int;
  time : int;
  tab : int;
  page : int option;
  url : Webmodel.Url.t;
  title : string;
  transition : Transition.t;
  referrer : int option;
  via_bookmark : int option;
}

type t =
  | Visit of visit
  | Close of { time : int; tab : int; visit_id : int }
  | Tab_opened of { time : int; tab : int; opener_tab : int option }
  | Tab_closed of { time : int; tab : int }
  | Bookmark_added of {
      time : int;
      bookmark_id : int;
      visit_id : int;
      url : Webmodel.Url.t;
      title : string;
    }
  | Search of { time : int; search_id : int; query : string; serp_visit : int }
  | Download_started of {
      time : int;
      download_id : int;
      visit_id : int;
      source_visit : int;
      url : Webmodel.Url.t;
      target_path : string;
    }
  | Form_submitted of {
      time : int;
      form_id : int;
      source_visit : int;
      result_visit : int;
      fields : (string * string) list;
    }

let time = function
  | Visit v -> v.time
  | Close c -> c.time
  | Tab_opened t -> t.time
  | Tab_closed t -> t.time
  | Bookmark_added b -> b.time
  | Search s -> s.time
  | Download_started d -> d.time
  | Form_submitted f -> f.time

let describe = function
  | Visit v ->
    Printf.sprintf "[%d] visit #%d tab=%d %s %S via %s" v.time v.visit_id v.tab
      (Webmodel.Url.to_string v.url) v.title (Transition.name v.transition)
  | Close c -> Printf.sprintf "[%d] close visit #%d tab=%d" c.time c.visit_id c.tab
  | Tab_opened t ->
    Printf.sprintf "[%d] tab %d opened%s" t.time t.tab
      (match t.opener_tab with None -> "" | Some o -> Printf.sprintf " (from tab %d)" o)
  | Tab_closed t -> Printf.sprintf "[%d] tab %d closed" t.time t.tab
  | Bookmark_added b ->
    Printf.sprintf "[%d] bookmark #%d on visit #%d %S" b.time b.bookmark_id b.visit_id b.title
  | Search s ->
    Printf.sprintf "[%d] search #%d %S (serp visit #%d)" s.time s.search_id s.query s.serp_visit
  | Download_started d ->
    Printf.sprintf "[%d] download #%d -> %s (visit #%d from #%d)" d.time d.download_id
      d.target_path d.visit_id d.source_visit
  | Form_submitted f ->
    Printf.sprintf "[%d] form #%d submitted from visit #%d -> visit #%d" f.time f.form_id
      f.source_visit f.result_visit
