module R = Relstore

type bookmark_origin = {
  bookmark_title : string;
  page_url : string;
  reached_from_search : string option;
}

type download_origin = {
  download_target : string;
  source_url : string;
  referrer_url : string option;
}

let table places name = R.Database.table (Places_db.database places) name

(* Walk a visit's from_visit chain upward, returning the place ids seen,
   nearest first.  The chain stops wherever Firefox dropped the
   relationship. *)
let rec ancestor_places places ~budget visit_id acc =
  if budget <= 0 then List.rev acc
  else
    match Places_db.visit places visit_id with
    | None -> List.rev acc
    | Some row -> begin
      let acc = row.Places_db.place_id :: acc in
      match row.Places_db.from_visit with
      | None -> List.rev acc
      | Some parent -> ancestor_places places ~budget:(budget - 1) parent acc
    end

let search_input_for places place_id =
  (* moz_inputhistory rows attach typed inputs to a place (for SERPs,
     the query text). *)
  List.find_map
    (fun (pid, input, _uses) -> if pid = place_id then Some input else None)
    (Places_db.input_history places)

let bookmarks_reached_from_search places =
  List.map
    (fun (_, place_id, bookmark_title) ->
      let place = Places_db.place places place_id in
      (* First visit of the bookmarked page, then up the referrer chain
         looking for a place that has input history (a SERP). *)
      let first_visit =
        match
          List.sort
            (fun a b -> Int.compare a.Places_db.visit_date b.Places_db.visit_date)
            (Places_db.visits_of_place places place_id)
        with
        | v :: _ -> Some v
        | [] -> None
      in
      let reached_from_search =
        match first_visit with
        | None -> None
        | Some v ->
          List.find_map (search_input_for places)
            (ancestor_places places ~budget:32 v.Places_db.visit_id [])
      in
      { bookmark_title; page_url = place.Places_db.url; reached_from_search })
    (Places_db.bookmarks places)

let downloads_with_referrers places =
  List.map
    (fun (_, source, target, _time) ->
      (* Join back through the file's place to its fetch visits. *)
      let referrer_url =
        match Places_db.place_by_url places source with
        | None -> None
        | Some place ->
          List.find_map
            (fun v ->
              match v.Places_db.from_visit with
              | None -> None
              | Some parent -> begin
                match Places_db.visit places parent with
                | Some prow ->
                  Some (Places_db.place places prow.Places_db.place_id).Places_db.url
                | None -> None
              end)
            (Places_db.visits_of_place places place.Places_db.place_id)
      in
      { download_target = target; source_url = source; referrer_url })
    (Places_db.downloads places)

let top_referrers ?(limit = 10) places =
  let visits = table places "moz_historyvisits" in
  (* Self-join: each visit's from_visit resolves to the referring
     visit's place. *)
  let counts = Hashtbl.create 64 in
  R.Table.iter visits (fun _rowid row ->
      let schema = R.Table.schema visits in
      match R.Row.int_opt schema row "from_visit" with
      | None -> ()
      | Some parent -> begin
        match Places_db.visit places parent with
        | None -> ()
        | Some prow ->
          let url = (Places_db.place places prow.Places_db.place_id).Places_db.url in
          Hashtbl.replace counts url (1 + Option.value ~default:0 (Hashtbl.find_opt counts url))
      end);
  let all = Hashtbl.fold (fun url n acc -> (url, n) :: acc) counts [] in
  List.filteri
    (fun i _ -> i < limit)
    (List.sort
       (fun (ua, na) (ub, nb) ->
         let c = Int.compare nb na in
         if c <> 0 then c else String.compare ua ub)
       all)

let dead_end_rate places =
  let hidden_places = Hashtbl.create 64 in
  List.iter
    (fun (p : Places_db.place) ->
      if p.Places_db.hidden then Hashtbl.replace hidden_places p.Places_db.place_id ())
    (Places_db.places places);
  let total = ref 0 and orphans = ref 0 in
  List.iter
    (fun v ->
      if not (Hashtbl.mem hidden_places v.Places_db.place_id) then begin
        incr total;
        if v.Places_db.from_visit = None then incr orphans
      end)
    (Places_db.visits places);
  if !total = 0 then 0.0 else float_of_int !orphans /. float_of_int !total
