(** Stochastic user behaviour: drives the {!Engine} through simulated
    days of browsing and records the ground truth the experiments score
    against.

    The default configuration is calibrated so 79 simulated days yield a
    provenance graph of more than 25,000 nodes — the scale reported in
    §3 of the paper. *)

type config = {
  days : int;
  sessions_per_day : int;  (** mean; actual count varies ±2 *)
  actions_per_session : int;  (** mean length of a session's action walk *)
  topic_interest_skew : float;  (** Zipf exponent over topics *)
  follow_link_prob : float;  (** continue along a link of the current page *)
  search_prob : float;
  targeted_search_prob : float;  (** a search aims at a specific known article *)
  ambiguous_search_prob : float;  (** a search uses a planted ambiguous term *)
  typed_prob : float;  (** jump via location bar *)
  revisit_prob : float;  (** a typed jump goes to an already-visited page *)
  new_tab_prob : float;
  switch_tab_prob : float;
  bookmark_prob : float;
  use_bookmark_prob : float;
  download_prob : float;  (** when the current page is a download host *)
  form_prob : float;
  dual_topic_session_prob : float;  (** sessions interleaving two topics (§2.3) *)
  think_time_mean : float;  (** seconds between actions *)
  results_considered : int;  (** how deep in a SERP the user looks *)
}

val default_config : config

(** Ground truth emitted during simulation. *)

type search_episode = {
  query : string;
  time : int;
  serp_visit : int;
  intended_topic : int;
  intended_page : int option;  (** for targeted searches *)
  clicked_page : int option;
  clicked_visit : int option;
  ambiguous : bool;
}

type download_episode = {
  download_id : int;
  file_page : int;
  host_page : int;
  session_entry_page : int;  (** where the session's chain started *)
  time : int;
}

type dual_episode = {
  span_start : int;
  span_end : int;
  focus_topic : int;  (** topic the user was reading *)
  focus_page : int;  (** a specific article she saw *)
  other_topic : int;  (** topic she was simultaneously searching *)
  other_term : string;  (** a term from those searches *)
}

type trace = {
  searches : search_episode list;
  downloads : download_episode list;
  duals : dual_episode list;
  total_actions : int;
  span_days : int;
}

val run : ?config:config -> rng:Provkit_util.Prng.t -> Engine.t -> trace
(** Simulate [config.days] days of browsing against the engine.  All
    randomness comes from [rng]; equal seeds give equal traces. *)
