module Prng = Provkit_util.Prng
module Web = Webmodel.Web_graph
module Page = Webmodel.Page_content

type config = {
  days : int;
  sessions_per_day : int;
  actions_per_session : int;
  topic_interest_skew : float;
  follow_link_prob : float;
  search_prob : float;
  targeted_search_prob : float;
  ambiguous_search_prob : float;
  typed_prob : float;
  revisit_prob : float;
  new_tab_prob : float;
  switch_tab_prob : float;
  bookmark_prob : float;
  use_bookmark_prob : float;
  download_prob : float;
  form_prob : float;
  dual_topic_session_prob : float;
  think_time_mean : float;
  results_considered : int;
}

let default_config =
  {
    days = 79;
    sessions_per_day = 6;
    actions_per_session = 40;
    topic_interest_skew = 1.0;
    follow_link_prob = 0.75;
    search_prob = 0.14;
    targeted_search_prob = 0.35;
    ambiguous_search_prob = 0.10;
    typed_prob = 0.08;
    revisit_prob = 0.6;
    new_tab_prob = 0.05;
    switch_tab_prob = 0.08;
    bookmark_prob = 0.015;
    use_bookmark_prob = 0.03;
    download_prob = 0.5;
    form_prob = 0.02;
    dual_topic_session_prob = 0.12;
    think_time_mean = 25.0;
    results_considered = 5;
  }

type search_episode = {
  query : string;
  time : int;
  serp_visit : int;
  intended_topic : int;
  intended_page : int option;
  clicked_page : int option;
  clicked_visit : int option;
  ambiguous : bool;
}

type download_episode = {
  download_id : int;
  file_page : int;
  host_page : int;
  session_entry_page : int;
  time : int;
}

type dual_episode = {
  span_start : int;
  span_end : int;
  focus_topic : int;
  focus_page : int;
  other_topic : int;
  other_term : string;
}

type trace = {
  searches : search_episode list;
  downloads : download_episode list;
  duals : dual_episode list;
  total_actions : int;
  span_days : int;
}

type state = {
  cfg : config;
  rng : Prng.t;
  engine : Engine.t;
  web : Web.t;
  interest_order : int array;  (* topic ids, most preferred first *)
  interest_zipf : Provkit_util.Zipf.t;
  visited : (int, unit) Hashtbl.t;  (* navigable pages ever visited *)
  mutable clock : int;
  mutable searches : search_episode list;
  mutable downloads : download_episode list;
  mutable duals : dual_episode list;
  mutable actions : int;
}

let tick st =
  let dt = 1 + int_of_float (Prng.exponential st.rng (1.0 /. st.cfg.think_time_mean)) in
  st.clock <- st.clock + dt;
  st.clock

let pick_topic st = st.interest_order.(Provkit_util.Zipf.sample st.interest_zipf st.rng)

let interest_rank st topic =
  let rank = ref max_int in
  Array.iteri (fun i t -> if t = topic then rank := i) st.interest_order;
  !rank

let topic_hub st topic = Prng.pick_list st.rng (Web.hubs_of_topic st.web topic)

let mark_visited st (info : Engine.visit_info) =
  match info.Engine.page with
  | Some pid when Page.is_navigable (Web.page st.web pid) ->
    Hashtbl.replace st.visited pid ()
  | _ -> ()

let page_of st (info : Engine.visit_info) =
  Option.map (Web.page st.web) info.Engine.page

let current_page st tab =
  match Engine.current_visit st.engine tab with
  | None -> None
  | Some info -> page_of st info

let navigate_typed st ~tab target =
  let info = Engine.visit_typed st.engine ~time:(tick st) ~tab target in
  mark_visited st info;
  info

let navigate_link st ~tab target =
  let info = Engine.visit_link st.engine ~time:(tick st) ~tab target in
  mark_visited st info;
  info

(* Pick which result (if any) the user clicks: the first one of her
   intended topic within the window, else — targeted searches — the
   intended page if shown, else the top result most of the time. *)
let choose_click st ~intended_topic ~intended_page results =
  let window = List.filteri (fun i _ -> i < st.cfg.results_considered) results in
  let of_topic =
    List.find_opt
      (fun (r : Webmodel.Search_engine.result) ->
        (Web.page st.web r.Webmodel.Search_engine.page).Page.topic = intended_topic)
      window
  in
  let exact =
    match intended_page with
    | None -> None
    | Some p ->
      List.find_opt
        (fun (r : Webmodel.Search_engine.result) -> r.Webmodel.Search_engine.page = p)
        window
  in
  match (exact, of_topic, window) with
  | Some r, _, _ -> Some r.Webmodel.Search_engine.page
  | None, Some r, _ -> Some r.Webmodel.Search_engine.page
  | None, None, top :: _ ->
    if Prng.bernoulli st.rng 0.7 then Some top.Webmodel.Search_engine.page else None
  | None, None, [] -> None

let distinctive_title_terms st page_id =
  let p = Web.page st.web page_id in
  let terms = Textindex.Tokenizer.terms ~stem:false p.Page.title in
  let n = min 3 (List.length terms) in
  if n = 0 then [ Webmodel.Topic.name (Web.topic st.web p.Page.topic) ]
  else Prng.sample_without_replacement st.rng n (Array.of_list terms)

(* Links a user can follow as navigation: clicking a file link triggers
   a download, not a page visit, so File targets are excluded here and
   handled by the download action instead. *)
let navigable_links st (page : Page.t) =
  Array.of_list
    (List.filter
       (fun target -> (Web.page st.web target).Page.kind <> Page.File)
       (Array.to_list page.Page.links))

let articles_of_topic st topic =
  List.filter
    (fun pid -> (Web.page st.web pid).Page.kind = Page.Article)
    (Web.pages_of_topic st.web topic)

let do_search st ~tab ~topic =
  let ambiguities = Web.ambiguities st.web in
  let roll = Prng.float st.rng 1.0 in
  let query, intended_topic, intended_page, ambiguous =
    if ambiguities <> [] && roll < st.cfg.ambiguous_search_prob then begin
      let a = Prng.pick_list st.rng ambiguities in
      (* The user means whichever of the two senses she is more
         interested in — the paper's gardener and her rosebud. *)
      let intended =
        if interest_rank st a.Web.topic_a <= interest_rank st a.Web.topic_b then a.Web.topic_a
        else a.Web.topic_b
      in
      (a.Web.term, intended, None, true)
    end
    else if roll < st.cfg.ambiguous_search_prob +. st.cfg.targeted_search_prob then begin
      match articles_of_topic st topic with
      | [] -> (Webmodel.Topic.name (Web.topic st.web topic), topic, None, false)
      | articles ->
        let target = Prng.pick_list st.rng articles in
        (String.concat " " (distinctive_title_terms st target), topic, Some target, false)
    end
    else begin
      let tp = Web.topic st.web topic in
      let n = Prng.int_in st.rng 1 2 in
      (String.concat " " (Webmodel.Topic.sample_terms tp st.rng n), topic, None, false)
    end
  in
  let serp_info, results = Engine.search st.engine ~time:(tick st) ~tab query in
  let clicked_page = choose_click st ~intended_topic ~intended_page results in
  let clicked_visit =
    match clicked_page with
    | None -> None
    | Some page ->
      let info = Engine.click_result st.engine ~time:(tick st) ~tab page in
      mark_visited st info;
      Some info.Engine.visit_id
  in
  st.searches <-
    {
      query;
      time = serp_info.Engine.time;
      serp_visit = serp_info.Engine.visit_id;
      intended_topic;
      intended_page;
      clicked_page;
      clicked_visit;
      ambiguous;
    }
    :: st.searches

let typed_jump st ~tab ~topic =
  let revisits =
    if Prng.bernoulli st.rng st.cfg.revisit_prob then
      Hashtbl.fold (fun pid () acc -> pid :: acc) st.visited []
    else []
  in
  match revisits with
  | [] -> ignore (navigate_typed st ~tab (topic_hub st topic))
  | pages -> ignore (navigate_typed st ~tab (Prng.pick_list st.rng (List.sort Int.compare pages)))

let do_download st ~tab ~(host : Page.t) ~session_entry_page =
  let files =
    List.filter
      (fun pid -> (Web.page st.web pid).Page.kind = Page.File)
      (Array.to_list host.Page.links)
  in
  match files with
  | [] -> ()
  | _ ->
    let file_page = Prng.pick_list st.rng files in
    let download_id, _info = Engine.download st.engine ~time:(tick st) ~tab ~file_page in
    st.downloads <-
      {
        download_id;
        file_page;
        host_page = host.Page.id;
        session_entry_page;
        time = st.clock;
      }
      :: st.downloads

let do_form st ~tab ~(page : Page.t) =
  (* A site-local search form: lands on one of the site's own pages. *)
  match Array.to_list page.Page.links with
  | [] -> ()
  | links ->
    let target = Prng.pick_list st.rng links in
    let target_page = Web.page st.web target in
    let query_terms =
      Textindex.Tokenizer.terms ~stem:false target_page.Page.title
    in
    let value =
      match query_terms with [] -> "search" | t :: _ -> t
    in
    let info =
      Engine.submit_form st.engine ~time:(tick st) ~tab
        ~fields:[ ("q", value) ] ~result_page:target
    in
    mark_visited st info

(* One step of the action walk in [tab].  Returns the possibly-changed
   active tab (new-tab actions move focus). *)
let step st ~session_tabs ~session_entry_page tab =
  st.actions <- st.actions + 1;
  (* Occasionally open a new tab from the current one and continue there. *)
  let tab =
    if Prng.bernoulli st.rng st.cfg.new_tab_prob then begin
      let fresh = Engine.open_tab st.engine ~time:(tick st) ~opener:tab () in
      session_tabs := fresh :: !session_tabs;
      fresh
    end
    else if Prng.bernoulli st.rng st.cfg.switch_tab_prob && List.length !session_tabs > 1
    then Prng.pick_list st.rng !session_tabs
    else tab
  in
  let topic = pick_topic st in
  (match current_page st tab with
  | None -> begin
    (* Fresh tab: enter somewhere. *)
    match Engine.current_visit st.engine tab with
    | Some _serp -> begin
      (* Displaying a SERP with nothing clicked; search again. *)
      do_search st ~tab ~topic
    end
    | None ->
      if Prng.bernoulli st.rng 0.5 then ignore (navigate_typed st ~tab (topic_hub st topic))
      else do_search st ~tab ~topic
  end
  | Some page ->
    if page.Page.kind = Page.Download_host && Prng.bernoulli st.rng st.cfg.download_prob
    then do_download st ~tab ~host:page ~session_entry_page
    else if Prng.bernoulli st.rng st.cfg.search_prob then do_search st ~tab ~topic
    else if Prng.bernoulli st.rng st.cfg.typed_prob then typed_jump st ~tab ~topic
    else if
      Prng.bernoulli st.rng st.cfg.use_bookmark_prob && Engine.bookmarks st.engine <> []
    then begin
      let bookmark, _, _ = Prng.pick_list st.rng (Engine.bookmarks st.engine) in
      let info = Engine.visit_bookmark st.engine ~time:(tick st) ~tab ~bookmark in
      mark_visited st info
    end
    else if Prng.bernoulli st.rng st.cfg.bookmark_prob then
      ignore (Engine.add_bookmark st.engine ~time:(tick st) ~tab)
    else if Prng.bernoulli st.rng st.cfg.form_prob && page.Page.kind = Page.Hub then
      do_form st ~tab ~page
    else if Prng.bernoulli st.rng 0.02 then
      (* An occasional reload of whatever is on screen. *)
      ignore (Engine.reload st.engine ~time:(tick st) ~tab)
    else begin
      let links = navigable_links st page in
      if Array.length links > 0 && Prng.bernoulli st.rng st.cfg.follow_link_prob then
        ignore (navigate_link st ~tab (Prng.pick st.rng links))
      else typed_jump st ~tab ~topic
    end);
  tab

let dual_session st ~session_start =
  (* §2.3's wine-and-plane-tickets pattern: one tab reads topic A while
     another searches topic B, interleaved in time. *)
  let focus_topic = pick_topic st in
  let other_topic =
    let rec pick () =
      let t = pick_topic st in
      if t = focus_topic then pick () else t
    in
    pick ()
  in
  let tab_a = Engine.open_tab st.engine ~time:(tick st) () in
  let tab_b = Engine.open_tab st.engine ~time:(tick st) ~opener:tab_a () in
  ignore (navigate_typed st ~tab:tab_a (topic_hub st focus_topic));
  let focus_page = ref None in
  let other_term = ref None in
  let rounds = max 3 (st.cfg.actions_per_session / 6) in
  for _ = 1 to rounds do
    (* Read a couple of links in A. *)
    for _ = 1 to 2 do
      match current_page st tab_a with
      | Some page when Array.length (navigable_links st page) > 0 ->
        ignore (navigate_link st ~tab:tab_a (Prng.pick st.rng (navigable_links st page)))
      | _ -> ignore (navigate_typed st ~tab:tab_a (topic_hub st focus_topic))
    done;
    (* Search B in the other tab with a distinctive two-word query (the
       paper's "plane tickets" is two words for a reason: it pins the
       context to this span of time). *)
    let tp = Web.topic st.web other_topic in
    let term =
      Webmodel.Topic.sample_term tp st.rng ^ " " ^ Webmodel.Topic.sample_term tp st.rng
    in
    let _serp, results = Engine.search st.engine ~time:(tick st) ~tab:tab_b term in
    (match results with
    | top :: _ when Prng.bernoulli st.rng 0.6 ->
      ignore (Engine.click_result st.engine ~time:(tick st) ~tab:tab_b top.Webmodel.Search_engine.page)
    | _ -> ());
    (* Ground truth: the tab-A page displayed *during this search* is
       genuinely co-open with it. *)
    match current_page st tab_a with
    | Some p when p.Page.kind = Page.Article && p.Page.topic = focus_topic ->
      focus_page := Some p.Page.id;
      other_term := Some term
    | _ -> ()
  done;
  let span_end = st.clock in
  Engine.close_tab st.engine ~time:(tick st) tab_a;
  Engine.close_tab st.engine ~time:(tick st) tab_b;
  match (!focus_page, !other_term) with
  | Some focus_page, Some other_term ->
    st.duals <-
      { span_start = session_start; span_end; focus_topic; focus_page; other_topic; other_term }
      :: st.duals
  | _ -> ()

let ordinary_session st =
  let session_tabs = ref [] in
  let tab = Engine.open_tab st.engine ~time:(tick st) () in
  session_tabs := [ tab ];
  let topic = pick_topic st in
  (* Entry point: mostly a typed jump to a favorite hub, else a search. *)
  let entry =
    if Prng.bernoulli st.rng 0.6 then navigate_typed st ~tab (topic_hub st topic)
    else begin
      do_search st ~tab ~topic;
      match Engine.current_visit st.engine tab with
      | Some info -> info
      | None -> navigate_typed st ~tab (topic_hub st topic)
    end
  in
  let session_entry_page =
    match entry.Engine.page with Some p -> p | None -> topic_hub st topic
  in
  let actions =
    max 3 (Prng.int_in st.rng (st.cfg.actions_per_session / 2) (3 * st.cfg.actions_per_session / 2))
  in
  let active = ref tab in
  for _ = 1 to actions do
    active := step st ~session_tabs ~session_entry_page !active
  done;
  List.iter
    (fun tab ->
      if Engine.open_tabs st.engine |> List.mem tab then
        Engine.close_tab st.engine ~time:(tick st) tab)
    !session_tabs

let run ?(config = default_config) ~rng engine =
  let web = Engine.web engine in
  let n_topics = Web.topic_count web in
  let interest_order = Array.init n_topics (fun i -> i) in
  Prng.shuffle rng interest_order;
  let st =
    {
      cfg = config;
      rng;
      engine;
      web;
      interest_order;
      interest_zipf = Provkit_util.Zipf.create ~n:n_topics ~s:config.topic_interest_skew;
      visited = Hashtbl.create 1024;
      clock = 0;
      searches = [];
      downloads = [];
      duals = [];
      actions = 0;
    }
  in
  for day = 0 to config.days - 1 do
    let sessions =
      max 1 (config.sessions_per_day + Prng.int_in rng (-2) 2)
    in
    for session = 0 to sessions - 1 do
      (* Spread sessions across the waking day; never travel back in time. *)
      let planned =
        (day * 86_400) + 25_200 + (session * (57_600 / max 1 sessions))
        + Prng.int rng 1_800
      in
      st.clock <- max planned (st.clock + 300);
      let session_start = st.clock in
      if Prng.bernoulli rng config.dual_topic_session_prob then
        dual_session st ~session_start
      else ordinary_session st
    done
  done;
  {
    searches = List.rev st.searches;
    downloads = List.rev st.downloads;
    duals = List.rev st.duals;
    total_actions = st.actions;
    span_days = config.days;
  }
