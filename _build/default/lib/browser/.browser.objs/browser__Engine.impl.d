lib/browser/engine.ml: Array Event Hashtbl Int List Option Places_db Printf Tabs Transition Webmodel
