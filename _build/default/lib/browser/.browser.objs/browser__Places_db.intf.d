lib/browser/places_db.mli: Event Relstore Transition
