lib/browser/history_search.ml: Float Int List Places_db Textindex
