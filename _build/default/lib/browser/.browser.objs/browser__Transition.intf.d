lib/browser/transition.mli: Format
