lib/browser/tabs.ml: Hashtbl Int List Printf
