lib/browser/awesomebar.ml: Float Hashtbl Int List Option Places_db Provkit_util String
