lib/browser/places_queries.ml: Hashtbl Int List Option Places_db Relstore String
