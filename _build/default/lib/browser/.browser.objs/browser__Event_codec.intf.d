lib/browser/event_codec.mli: Buffer Event
