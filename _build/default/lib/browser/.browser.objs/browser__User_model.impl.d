lib/browser/user_model.ml: Array Engine Hashtbl Int List Option Provkit_util String Textindex Webmodel
