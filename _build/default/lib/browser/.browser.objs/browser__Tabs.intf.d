lib/browser/tabs.mli:
