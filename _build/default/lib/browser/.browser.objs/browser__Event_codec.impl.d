lib/browser/event_codec.ml: Buffer Char Event Fun List Relstore String Transition Webmodel
