lib/browser/awesomebar.mli: Places_db
