lib/browser/engine.mli: Event Places_db Transition Webmodel
