lib/browser/user_model.mli: Engine Provkit_util
