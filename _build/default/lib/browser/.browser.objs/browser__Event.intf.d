lib/browser/event.mli: Transition Webmodel
