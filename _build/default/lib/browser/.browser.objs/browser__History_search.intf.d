lib/browser/history_search.mli: Places_db
