lib/browser/places_db.ml: Event Int List Option Provkit_util Relstore Transition Webmodel
