lib/browser/places_queries.mli: Places_db
