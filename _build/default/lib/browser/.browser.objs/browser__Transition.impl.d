lib/browser/transition.ml: Format Printf
