lib/browser/event.ml: Printf Transition Webmodel
