(** Firefox Places visit transition types (§3: "Firefox stores a table
    of transitions, the actions that load a particular page").

    Codes mirror Places' [TRANSITION_*] constants for the kinds Firefox 3
    defines (1-8); form-submit and reload extend the table. *)

type t =
  | Link  (** user followed a link *)
  | Typed  (** user typed the URL in the location bar / autocompleted *)
  | Bookmark  (** user clicked a bookmark *)
  | Embed  (** inner content loaded by a top-level page *)
  | Redirect_permanent
  | Redirect_temporary
  | Download  (** the visit that fetched a downloaded file *)
  | Framed_link  (** link inside an embedded frame *)
  | Form_submit  (** page produced by submitting a form *)
  | Reload  (** the user reloaded the displayed page *)

val to_code : t -> int
val of_code : int -> t
(** Raises [Invalid_argument] on unknown codes. *)

val name : t -> string

val is_redirect : t -> bool
val is_user_initiated : t -> bool
(** True for transitions caused by an explicit user action (link, typed,
    bookmark, download, form submit); false for redirects and embeds —
    the distinction §3.2 says personalization algorithms care about. *)

val all : t list
val pp : Format.formatter -> t -> unit
