type t =
  | Link
  | Typed
  | Bookmark
  | Embed
  | Redirect_permanent
  | Redirect_temporary
  | Download
  | Framed_link
  | Form_submit
  | Reload

let to_code = function
  | Link -> 1
  | Typed -> 2
  | Bookmark -> 3
  | Embed -> 4
  | Redirect_permanent -> 5
  | Redirect_temporary -> 6
  | Download -> 7
  | Framed_link -> 8
  | Form_submit -> 9
  | Reload -> 10

let of_code = function
  | 1 -> Link
  | 2 -> Typed
  | 3 -> Bookmark
  | 4 -> Embed
  | 5 -> Redirect_permanent
  | 6 -> Redirect_temporary
  | 7 -> Download
  | 8 -> Framed_link
  | 9 -> Form_submit
  | 10 -> Reload
  | c -> invalid_arg (Printf.sprintf "Transition.of_code: %d" c)

let name = function
  | Link -> "link"
  | Typed -> "typed"
  | Bookmark -> "bookmark"
  | Embed -> "embed"
  | Redirect_permanent -> "redirect-permanent"
  | Redirect_temporary -> "redirect-temporary"
  | Download -> "download"
  | Framed_link -> "framed-link"
  | Form_submit -> "form-submit"
  | Reload -> "reload"

let is_redirect = function
  | Redirect_permanent | Redirect_temporary -> true
  | Link | Typed | Bookmark | Embed | Download | Framed_link | Form_submit | Reload ->
    false

let is_user_initiated = function
  | Link | Typed | Bookmark | Download | Form_submit | Reload -> true
  | Embed | Redirect_permanent | Redirect_temporary | Framed_link -> false

let all =
  [ Link; Typed; Bookmark; Embed; Redirect_permanent; Redirect_temporary; Download; Framed_link; Form_submit; Reload ]

let pp ppf t = Format.pp_print_string ppf (name t)
