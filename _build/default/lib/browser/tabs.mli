(** Tab state: which tabs are open and which visit each is displaying.
    The engine uses this to emit the open/close events Firefox lacks. *)

type t

val create : unit -> t

val open_tab : t -> ?opener:int -> unit -> int
(** Returns the fresh tab id. *)

val close_tab : t -> int -> unit
(** Raises [Invalid_argument] on an unknown or already-closed tab. *)

val is_open : t -> int -> bool
val open_tabs : t -> int list
(** Ascending. *)

val opener : t -> int -> int option
val current_visit : t -> int -> int option
(** The visit currently displayed in a tab, when it has navigated. *)

val set_current_visit : t -> int -> int -> unit
(** Raises [Invalid_argument] on a closed tab. *)

val count_open : t -> int
