(** The browser engine: executes user actions against the synthetic web,
    maintains tab state, assigns visit ids, auto-follows redirects,
    auto-loads embedded content, and broadcasts the {!Event} stream to
    observers (the Places baseline subscribes by default; the provenance
    capture layer subscribes on top). *)

type t

type visit_info = {
  visit_id : int;
  page : int option;
  url : Webmodel.Url.t;
  title : string;
  tab : int;
  time : int;
  transition : Transition.t;
}

val create : web:Webmodel.Web_graph.t -> search:Webmodel.Search_engine.t -> unit -> t

val subscribe : t -> (Event.t -> unit) -> unit
(** Observers run in subscription order on every event. *)

val web : t -> Webmodel.Web_graph.t
val places : t -> Places_db.t
val event_log : t -> Event.t list
(** Every event emitted so far, oldest first. *)

val visit_info : t -> int -> visit_info
(** Raises [Not_found] on unknown visit ids. *)

val visit_count : t -> int

(** {2 Tabs} *)

val open_tab : t -> time:int -> ?opener:int -> unit -> int
val close_tab : t -> time:int -> int -> unit
(** Emits a {!Event.Close} for the tab's displayed visit, then
    [Tab_closed]. *)

val open_tabs : t -> int list
val current_visit : t -> int -> visit_info option

(** {2 Navigation} *)

val visit_typed : t -> time:int -> tab:int -> int -> visit_info
(** The user types/autocompletes the URL of a web page.  The emitted
    event still carries the previous visit as referrer — it is Places
    that discards it. *)

val visit_link : t -> time:int -> tab:int -> int -> visit_info
(** Follow a link from the tab's current page to a target page id. *)

val visit_bookmark : t -> time:int -> tab:int -> bookmark:int -> visit_info
(** Navigate via a stored bookmark.  Raises [Not_found] on unknown
    bookmark ids. *)

val reload : t -> time:int -> tab:int -> visit_info
(** Reload the tab's current page: a fresh visit instance of the same
    page (§3.1's versioning applies to reloads too).  Raises
    [Invalid_argument] when the tab shows nothing or shows a SERP. *)

(** All navigations: if the target is a redirect page the engine follows
    the chain, emitting one visit per hop; embedded images of the final
    page are fetched as [Embed] visits.  The returned info is the final
    top-level (content) visit. *)

(** {2 Search} *)

val search : t -> time:int -> tab:int -> string -> visit_info * Webmodel.Search_engine.result list
(** Run a query: emits the SERP visit (a typed navigation to the
    engine's result URL) plus a {!Event.Search}, and returns the results
    the SERP displays. *)

val click_result : t -> time:int -> tab:int -> int -> visit_info
(** Click a result on the SERP currently displayed in [tab] (a [Link]
    visit with the SERP as referrer). *)

(** {2 Downloads, bookmarks, forms} *)

val download : t -> time:int -> tab:int -> file_page:int -> int * visit_info
(** Download a file linked from the current page; returns
    [(download_id, fetch_visit)]. *)

val add_bookmark : t -> time:int -> tab:int -> int
(** Bookmark the tab's current page; returns the bookmark id.  Raises
    [Invalid_argument] when the tab has no current visit. *)

val bookmarks : t -> (int * int option * string) list
(** [(bookmark_id, page, title)], insertion order. *)

val submit_form : t -> time:int -> tab:int -> fields:(string * string) list -> result_page:int -> visit_info
(** Submit a form on the current page whose action leads to
    [result_page] (e.g. a site-local search). *)
