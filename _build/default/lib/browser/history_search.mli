(** The baseline textual history search — the paper's "Currently"
    behaviour in every §2 use case.

    Matches the query against each place's own title and URL text only
    (no graph context), ranking by text relevance boosted by frecency,
    like Firefox 3's awesome bar.  Hidden places (embeds, redirect hops)
    are excluded, as in Firefox. *)

type t

type result = { place_id : int; score : float }

val build : Places_db.t -> t
(** Index the current contents of the Places store.  Rebuild after bulk
    history changes ({!refresh}). *)

val refresh : t -> unit

val search : ?limit:int -> t -> string -> result list
(** Ranked places ([limit] defaults to 10). *)

val place_terms : Places_db.place -> string list
(** The terms indexed for a place (title + URL tokens) — exposed so the
    provenance-aware search can reuse the identical text pipeline,
    keeping E4 an apples-to-apples comparison. *)
