type tab_state = { opener : int option; mutable current : int option }

type t = { mutable next : int; open_tabs : (int, tab_state) Hashtbl.t }

let create () = { next = 1; open_tabs = Hashtbl.create 8 }

let open_tab t ?opener () =
  let id = t.next in
  t.next <- id + 1;
  Hashtbl.replace t.open_tabs id { opener; current = None };
  id

let state t tab =
  match Hashtbl.find_opt t.open_tabs tab with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Tabs: tab %d is not open" tab)

let close_tab t tab =
  let _ = state t tab in
  Hashtbl.remove t.open_tabs tab

let is_open t tab = Hashtbl.mem t.open_tabs tab

let open_tabs t =
  List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.open_tabs [])

let opener t tab = (state t tab).opener
let current_visit t tab = (state t tab).current
let set_current_visit t tab visit = (state t tab).current <- Some visit
let count_open t = Hashtbl.length t.open_tabs
