(** The §3.3 pain, implemented: answering provenance-flavoured questions
    directly against the Places schema requires joining heterogeneous
    tables through URLs and ids — "querying a bookmark relationship may
    require the user to join heterogeneous tables or even databases".

    Each function here is the relational counterpart of a one-hop graph
    query in [Core]; experiment E15 compares the two formulations on the
    same history. *)

type bookmark_origin = {
  bookmark_title : string;
  page_url : string;
  reached_from_search : string option;
      (** the typed input that led (transitively, via from_visit) to the
          bookmarked page's first visit, when one can be recovered *)
}

val bookmarks_reached_from_search : Places_db.t -> bookmark_origin list
(** "Which of my bookmarks did I originally find through a search?" —
    joins moz_bookmarks -> moz_places -> moz_historyvisits (walking
    from_visit chains) -> moz_places -> moz_inputhistory. *)

type download_origin = {
  download_target : string;
  source_url : string;
  referrer_url : string option;
      (** the page the fetch visit's from_visit chain points at, if the
          chain survives Places' information loss *)
}

val downloads_with_referrers : Places_db.t -> download_origin list
(** "Where did each download come from?" — joins moz_downloads (by
    source URL) -> moz_places -> moz_historyvisits -> from_visit ->
    moz_places. *)

val top_referrers : ?limit:int -> Places_db.t -> (string * int) list
(** "Which pages do I navigate away from most?" — self-join of
    moz_historyvisits on from_visit, grouped by the referring place's
    URL, descending ([limit] defaults to 10). *)

val dead_end_rate : Places_db.t -> float
(** Fraction of non-hidden visits with no [from_visit] — the paper's
    "sparsely connected metadata": every typed/bookmark navigation is a
    dead end to Places. *)
