type align = Left | Right

let render ?aligns ~header rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Table_fmt.render: ragged row")
    rows;
  let aligns =
    match aligns with
    | Some a when List.length a = arity -> a
    | Some _ -> invalid_arg "Table_fmt.render: aligns arity mismatch"
    | None -> List.init arity (fun _ -> Left)
  in
  let all = header :: rows in
  let widths =
    List.init arity (fun c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all)
  in
  let fmt_row row =
    let cells =
      List.mapi
        (fun c cell ->
          let w = List.nth widths c in
          match List.nth aligns c with
          | Left -> Strutil.pad_right w cell
          | Right -> Strutil.pad_left w cell)
        row
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  " (List.map (fun w -> Strutil.repeat w "-") widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (fmt_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (fmt_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)
