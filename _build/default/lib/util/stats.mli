(** Descriptive statistics over float samples, used by the experiment
    harness for latency and size distributions. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in \[0,100\] with linear interpolation
    between order statistics.  Raises [Invalid_argument] on empty input. *)

val summarize : float list -> summary
(** Full summary.  Raises [Invalid_argument] on empty input. *)

val pp_summary : Format.formatter -> summary -> unit

val histogram : buckets:float list -> float list -> (float * int) list
(** [histogram ~buckets xs] counts samples [<=] each bucket upper bound,
    cumulative-exclusive: each sample lands in the first bucket whose
    bound is >= it; samples above the last bound are dropped into an
    implicit [infinity] bucket appended to the result. *)
