(** Deterministic pseudo-random number generation.

    Every source of randomness in the repository flows through this module
    so that datasets, workloads and experiments are reproducible
    bit-for-bit from a seed.  The generator is splitmix64, which has a
    64-bit state, passes BigCrush, and supports cheap stream splitting. *)

type t
(** A mutable generator.  Generators are cheap; split freely. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each subsystem (web generator, user model, query
    sampler…) its own stream so adding draws in one place does not
    perturb the others. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] counts Bernoulli([p]) failures before the first
    success; mean [(1-p)/p].  Requires [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from Exp(lambda); mean [1/lambda]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal draw. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] samples index [i] with probability proportional
    to [w.(i)].  Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a list
(** [sample_without_replacement t k arr] draws [min k (Array.length arr)]
    distinct elements. *)
