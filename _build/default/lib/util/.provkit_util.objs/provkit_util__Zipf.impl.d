lib/util/zipf.ml: Array Float Prng
