lib/util/table_fmt.ml: Buffer List String Strutil
