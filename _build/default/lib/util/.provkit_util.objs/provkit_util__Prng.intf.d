lib/util/prng.mli:
