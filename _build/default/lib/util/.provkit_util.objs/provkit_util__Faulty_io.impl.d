lib/util/faulty_io.ml: Buffer Char Fun List Printf String
