lib/util/timing.mli:
