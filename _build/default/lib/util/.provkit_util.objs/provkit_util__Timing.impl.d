lib/util/timing.ml: Int64 List Unix
