lib/util/faulty_io.mli: Buffer
