lib/util/strutil.mli:
