type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  assert (n >= 1);
  assert (s >= 0.0);
  let weights = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (weights.(k) /. total);
    cdf.(k) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; s; cdf }

let size t = t.n
let exponent t = t.s

let sample t rng =
  let u = Prng.float rng 1.0 in
  (* First index whose cumulative mass covers u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let probability t k =
  assert (k >= 0 && k < t.n);
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
