let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let time_ms f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.to_float (Int64.sub t1 t0) /. 1e6)

let repeat_time_ms n f =
  List.init n (fun _ ->
      let _, ms = time_ms f in
      ms)
