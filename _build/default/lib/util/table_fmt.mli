(** Aligned plain-text tables for experiment reports. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a table with a header rule.  Each row
    must have the same arity as the header.  [aligns] defaults to
    left-aligning every column. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)
