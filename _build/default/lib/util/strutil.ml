let lowercase_ascii = String.lowercase_ascii

let split_on_chars ~chars s =
  let is_sep c = List.mem c chars in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_sep c then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !out

let is_prefix ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let is_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let contains_substring ~needle s =
  let ln = String.length needle and ls = String.length s in
  if ln = 0 then true
  else if ln > ls then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= ls - ln do
      if String.sub s !i ln = needle then found := true else incr i
    done;
    !found
  end

let truncate n s =
  if String.length s <= n then s
  else if n <= 3 then String.sub s 0 n
  else String.sub s 0 (n - 3) ^ "..."

let join ~sep parts = String.concat sep parts

let pad_right w s =
  let l = String.length s in
  if l >= w then s else s ^ String.make (w - l) ' '

let pad_left w s =
  let l = String.length s in
  if l >= w then s else String.make (w - l) ' ' ^ s

let repeat n s =
  let buf = Buffer.create (n * String.length s) in
  for _ = 1 to n do
    Buffer.add_string buf s
  done;
  Buffer.contents buf
