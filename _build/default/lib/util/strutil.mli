(** Small string helpers shared across the repository. *)

val lowercase_ascii : string -> string
(** Alias of [String.lowercase_ascii], provided for discoverability. *)

val split_on_chars : chars:char list -> string -> string list
(** Split on any of [chars]; empty fields are dropped. *)

val is_prefix : prefix:string -> string -> bool
val is_suffix : suffix:string -> string -> bool

val contains_substring : needle:string -> string -> bool
(** Naive substring search; fine for the short strings we handle. *)

val truncate : int -> string -> string
(** [truncate n s] is [s] limited to [n] bytes, with a trailing ellipsis
    when shortened. *)

val join : sep:string -> string list -> string

val pad_right : int -> string -> string
(** Pad with spaces to at least the given width. *)

val pad_left : int -> string -> string

val repeat : int -> string -> string
(** [repeat n s] concatenates [n] copies of [s]. *)
