type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }

(* Non-negative 63-bit int from the top bits. *)
let bits63 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 1)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits63 t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = max 1e-300 (float t 1.0) in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))

let exponential t lambda =
  assert (lambda > 0.0);
  let u = max 1e-300 (float t 1.0) in
  -.log u /. lambda

let gaussian t ~mean ~stddev =
  let u1 = max 1e-300 (float t 1.0) in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Prng.weighted_index: non-positive total";
  let target = float t total in
  let n = Array.length w in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  let k = min k n in
  if k = 0 then []
  else begin
    let idx = Array.init n (fun i -> i) in
    (* Partial Fisher-Yates: only the first k slots need to be settled. *)
    for i = 0 to k - 1 do
      let j = int_in t i (n - 1) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp
    done;
    List.init k (fun i -> arr.(idx.(i)))
  end
