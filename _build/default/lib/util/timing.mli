(** Wall-clock timing for query budgets and experiment measurements. *)

val now_ns : unit -> int64
(** Monotonic-ish wall clock in nanoseconds (from [Unix.gettimeofday] if
    available, else [Sys.time]); adequate for millisecond-scale budgets. *)

val time_ms : (unit -> 'a) -> 'a * float
(** [time_ms f] runs [f ()] and returns its result with elapsed
    milliseconds. *)

val repeat_time_ms : int -> (unit -> 'a) -> float list
(** [repeat_time_ms n f] runs [f] [n] times and returns each elapsed
    duration in milliseconds. *)
