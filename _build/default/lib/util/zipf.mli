(** Zipfian (power-law) samplers.

    Web vocabulary, page popularity and revisit behaviour are all heavy
    tailed; the workload generator draws them from this module. *)

type t
(** A precomputed Zipf distribution over ranks [0 .. n-1]. *)

val create : n:int -> s:float -> t
(** [create ~n ~s] builds a distribution with [n] ranks and exponent [s]
    (typical web exponents: 0.8 – 1.2).  Requires [n >= 1], [s >= 0]. *)

val size : t -> int
val exponent : t -> float

val sample : t -> Prng.t -> int
(** Draw a rank; rank 0 is most probable.  O(log n) by binary search on
    the precomputed CDF. *)

val probability : t -> int -> float
(** [probability t k] is the mass of rank [k]. *)
