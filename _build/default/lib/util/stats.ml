type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    let n = List.length xs in
    List.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. n)

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
    end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
    {
      count = List.length xs;
      mean = mean xs;
      stddev = stddev xs;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
      p50 = percentile 50.0 xs;
      p90 = percentile 90.0 xs;
      p99 = percentile 99.0 xs;
    }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

let histogram ~buckets xs =
  let bounds = List.sort compare buckets @ [ infinity ] in
  let counts = Array.make (List.length bounds) 0 in
  let place x =
    let rec go i = function
      | [] -> ()
      | b :: rest -> if x <= b then counts.(i) <- counts.(i) + 1 else go (i + 1) rest
    in
    go 0 bounds
  in
  List.iter place xs;
  List.mapi (fun i b -> (b, counts.(i))) bounds
