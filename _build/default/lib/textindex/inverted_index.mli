(** An incremental inverted index over integer document ids.

    Stores per-term postings with term frequencies and per-document
    lengths, supporting add, remove and the statistics (df, tf, N,
    average length) the scorers need. *)

type t

val create : unit -> t

val add_document : t -> int -> string list -> unit
(** [add_document t doc_id terms] indexes the document.  Re-adding an
    existing id replaces its previous postings. *)

val remove_document : t -> int -> unit
(** No-op on unknown ids. *)

val mem : t -> int -> bool
val document_count : t -> int
val document_length : t -> int -> int
(** Term count of a document; 0 if unknown. *)

val average_length : t -> float

val term_frequency : t -> term:string -> doc:int -> int
val document_frequency : t -> string -> int
val postings : t -> string -> (int * int) list
(** [(doc_id, tf)] pairs for a term, ascending doc id. *)

val vocabulary_size : t -> int

val fold_terms : t -> init:'a -> f:('a -> string -> int -> 'a) -> 'a
(** Fold over (term, document frequency). *)
