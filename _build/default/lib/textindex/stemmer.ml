let is_vowel c = c = 'a' || c = 'e' || c = 'i' || c = 'o' || c = 'u'

let has_vowel s =
  let found = ref false in
  String.iter (fun c -> if is_vowel c then found := true) s;
  !found

let drop_suffix s n = String.sub s 0 (String.length s - n)

let ends_with s suffix = Provkit_util.Strutil.is_suffix ~suffix s

(* Try suffixes longest-first; a rule fires only if the remaining stem is
   at least [min_stem] long and still contains a vowel. *)
let rules =
  [
    ("ications", "ic"); ("ization", "ize"); ("fulness", "ful");
    ("ousness", "ous"); ("iveness", "ive"); ("ational", "ate");
    ("ication", "ic"); ("ements", "ement"); ("ingly", "e");
    ("ement", "ement"); ("ments", "ment"); ("ation", "ate");
    ("iness", "i"); ("sses", "ss"); ("ies", "i"); ("ness", "");
    ("edly", ""); ("eed", "ee"); ("ing", ""); ("ed", ""); ("ies", "i");
    ("es", "e"); ("ly", ""); ("s", "");
  ]

let min_stem = 3

let apply_rule s (suffix, replacement) =
  if not (ends_with s suffix) then None
  else begin
    let stem = drop_suffix s (String.length suffix) in
    if String.length stem < min_stem || not (has_vowel stem) then None
    else Some (stem ^ replacement)
  end

let stem s =
  if String.length s <= min_stem then s
  else begin
    match List.find_map (apply_rule s) rules with
    | Some s' -> s'
    | None -> s
  end
