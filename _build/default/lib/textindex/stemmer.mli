(** A light English suffix-stripping stemmer (a simplified Porter step 1
    plus common derivational endings).

    Goal: conflate the inflected forms the synthetic vocabulary produces
    ("gardening"/"gardens"/"garden") without the full Porter machinery.
    It never shortens a token below three characters. *)

val stem : string -> string
(** Expects a lowercased token. *)
