type t = { scorer : Scorer.t; index : Inverted_index.t }

type result = { doc : int; score : float }

let create ?(scorer = Scorer.default_bm25) () =
  { scorer; index = Inverted_index.create () }

let index_document t doc ~text =
  Inverted_index.add_document t.index doc (Tokenizer.terms text)

let index_terms t doc terms = Inverted_index.add_document t.index doc terms
let remove_document t doc = Inverted_index.remove_document t.index doc
let document_count t = Inverted_index.document_count t.index

let truncate limit hits =
  match limit with
  | None -> hits
  | Some n -> List.filteri (fun i _ -> i < n) hits

let query_terms ?limit t terms =
  let hits = Scorer.scores t.scorer t.index ~terms in
  truncate limit (List.map (fun (doc, score) -> { doc; score }) hits)

let query ?limit t text = query_terms ?limit t (Tokenizer.terms text)

let index t = t.index
