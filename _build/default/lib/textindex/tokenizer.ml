let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let tokenize_with keep s =
  let out = ref [] in
  let buf = Buffer.create 12 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if keep c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !out

let tokenize s = tokenize_with is_alnum s

let tokenize_url s =
  (* is_alnum already splits on URL punctuation; kept separate so callers
     can signal intent and so the policies can diverge later. *)
  tokenize_with is_alnum s

let pipeline ~stem tokens =
  let keep t = String.length t > 1 && not (Stopwords.is_stopword t) in
  let normalize t = if stem then Stemmer.stem t else t in
  List.map normalize (List.filter keep tokens)

let terms ?(stem = true) s = pipeline ~stem (tokenize s)
let terms_of_url ?(stem = true) s = pipeline ~stem (tokenize_url s)
