type t = Tf_idf | Bm25 of { k1 : float; b : float }

let default_bm25 = Bm25 { k1 = 1.2; b = 0.75 }

let idf index term =
  let n = Inverted_index.document_count index in
  if n = 0 then 0.0
  else begin
    let df = float_of_int (Inverted_index.document_frequency index term) in
    log (1.0 +. ((float_of_int n -. df +. 0.5) /. (df +. 0.5)))
  end

let tf_weight scorer index ~doc tf =
  let tf = float_of_int tf in
  match scorer with
  | Tf_idf -> if tf > 0.0 then 1.0 +. log tf else 0.0
  | Bm25 { k1; b } ->
    let len = float_of_int (Inverted_index.document_length index doc) in
    let avg = max 1.0 (Inverted_index.average_length index) in
    tf *. (k1 +. 1.0) /. (tf +. (k1 *. (1.0 -. b +. (b *. len /. avg))))

let score_document scorer index ~terms ~doc =
  List.fold_left
    (fun acc term ->
      let tf = Inverted_index.term_frequency index ~term ~doc in
      if tf = 0 then acc
      else acc +. (idf index term *. tf_weight scorer index ~doc tf))
    0.0 terms

let scores scorer index ~terms =
  let acc = Hashtbl.create 64 in
  let query_terms = List.sort_uniq String.compare terms in
  (* Count duplicates in the query as term boosts. *)
  let qtf term = List.length (List.filter (String.equal term) terms) in
  List.iter
    (fun term ->
      let weight = idf index term *. float_of_int (qtf term) in
      if weight > 0.0 then
        List.iter
          (fun (doc, tf) ->
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc doc) in
            Hashtbl.replace acc doc
              (prev +. (weight *. tf_weight scorer index ~doc tf)))
          (Inverted_index.postings index term))
    query_terms;
  let hits = Hashtbl.fold (fun doc s l -> (doc, s) :: l) acc [] in
  let hits = List.filter (fun (_, s) -> s > 0.0) hits in
  List.sort
    (fun (da, sa) (db, sb) ->
      let c = Float.compare sb sa in
      if c <> 0 then c else Int.compare da db)
    hits
