(* English function words plus web-chrome terms (www, html, com…) that
   carry no signal when matching history entries. *)
let words =
  [
    "a"; "about"; "above"; "after"; "again"; "against"; "all"; "am"; "an";
    "and"; "any"; "are"; "as"; "at"; "be"; "because"; "been"; "before";
    "being"; "below"; "between"; "both"; "but"; "by"; "can"; "did"; "do";
    "does"; "doing"; "down"; "during"; "each"; "few"; "for"; "from";
    "further"; "had"; "has"; "have"; "having"; "he"; "her"; "here"; "hers";
    "him"; "his"; "how"; "i"; "if"; "in"; "into"; "is"; "it"; "its";
    "just"; "me"; "more"; "most"; "my"; "no"; "nor"; "not"; "now"; "of";
    "off"; "on"; "once"; "only"; "or"; "other"; "our"; "ours"; "out";
    "over"; "own"; "same"; "she"; "should"; "so"; "some"; "such"; "than";
    "that"; "the"; "their"; "theirs"; "them"; "then"; "there"; "these";
    "they"; "this"; "those"; "through"; "to"; "too"; "under"; "until";
    "up"; "very"; "was"; "we"; "were"; "what"; "when"; "where"; "which";
    "while"; "who"; "whom"; "why"; "will"; "with"; "you"; "your"; "yours";
    (* web chrome; "example" is the synthetic web's TLD, i.e. its "com" *)
    "www"; "http"; "https"; "html"; "htm"; "php"; "com"; "net"; "org";
    "index"; "page"; "home"; "example"; "articles";
  ]

let set =
  let tbl = Hashtbl.create 256 in
  List.iter (fun w -> Hashtbl.replace tbl w ()) words;
  tbl

let is_stopword w = Hashtbl.mem set w
let all () = words
