module Imap = Map.Make (Int)

type t = {
  table : (string, int Imap.t) Hashtbl.t;  (* term -> doc -> tf *)
  doc_terms : (int, string list) Hashtbl.t;
  doc_len : (int, int) Hashtbl.t;
  mutable total_len : int;
}

let create () =
  {
    table = Hashtbl.create 1024;
    doc_terms = Hashtbl.create 256;
    doc_len = Hashtbl.create 256;
    total_len = 0;
  }

let mem t doc = Hashtbl.mem t.doc_len doc
let document_count t = Hashtbl.length t.doc_len

let document_length t doc =
  Option.value ~default:0 (Hashtbl.find_opt t.doc_len doc)

let average_length t =
  let n = document_count t in
  if n = 0 then 0.0 else float_of_int t.total_len /. float_of_int n

let distinct terms = List.sort_uniq String.compare terms

let remove_document t doc =
  match Hashtbl.find_opt t.doc_terms doc with
  | None -> ()
  | Some terms ->
    List.iter
      (fun term ->
        match Hashtbl.find_opt t.table term with
        | None -> ()
        | Some docs ->
          let docs' = Imap.remove doc docs in
          if Imap.is_empty docs' then Hashtbl.remove t.table term
          else Hashtbl.replace t.table term docs')
      (distinct terms);
    t.total_len <- t.total_len - document_length t doc;
    Hashtbl.remove t.doc_terms doc;
    Hashtbl.remove t.doc_len doc

let add_document t doc terms =
  if mem t doc then remove_document t doc;
  let counts = Hashtbl.create 16 in
  List.iter
    (fun term ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts term) in
      Hashtbl.replace counts term (n + 1))
    terms;
  Hashtbl.iter
    (fun term tf ->
      let docs = Option.value ~default:Imap.empty (Hashtbl.find_opt t.table term) in
      Hashtbl.replace t.table term (Imap.add doc tf docs))
    counts;
  Hashtbl.replace t.doc_terms doc terms;
  let len = List.length terms in
  Hashtbl.replace t.doc_len doc len;
  t.total_len <- t.total_len + len

let term_frequency t ~term ~doc =
  match Hashtbl.find_opt t.table term with
  | None -> 0
  | Some docs -> Option.value ~default:0 (Imap.find_opt doc docs)

let document_frequency t term =
  match Hashtbl.find_opt t.table term with
  | None -> 0
  | Some docs -> Imap.cardinal docs

let postings t term =
  match Hashtbl.find_opt t.table term with
  | None -> []
  | Some docs -> Imap.bindings docs

let vocabulary_size t = Hashtbl.length t.table

let fold_terms t ~init ~f =
  Hashtbl.fold (fun term docs acc -> f acc term (Imap.cardinal docs)) t.table init
