lib/textindex/tokenizer.ml: Buffer List Stemmer Stopwords String
