lib/textindex/search.ml: Inverted_index List Scorer Tokenizer
