lib/textindex/scorer.mli: Inverted_index
