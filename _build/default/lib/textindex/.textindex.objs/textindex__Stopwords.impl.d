lib/textindex/stopwords.ml: Hashtbl List
