lib/textindex/scorer.ml: Float Hashtbl Int Inverted_index List Option String
