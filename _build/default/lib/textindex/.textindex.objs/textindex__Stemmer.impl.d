lib/textindex/stemmer.ml: List Provkit_util String
