lib/textindex/stopwords.mli:
