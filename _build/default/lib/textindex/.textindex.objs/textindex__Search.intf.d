lib/textindex/search.mli: Inverted_index Scorer
