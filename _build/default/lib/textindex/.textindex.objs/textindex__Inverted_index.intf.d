lib/textindex/inverted_index.mli:
