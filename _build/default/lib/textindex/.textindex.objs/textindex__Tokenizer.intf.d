lib/textindex/tokenizer.mli:
