lib/textindex/stemmer.mli:
