lib/textindex/inverted_index.ml: Hashtbl Int List Map Option String
