(** A small English + web-navigation stopword list. *)

val is_stopword : string -> bool
(** Expects an already-lowercased token. *)

val all : unit -> string list
