(** A small ranked-search facade: index named documents, search with a
    free-text query. *)

type t

type result = { doc : int; score : float }

val create : ?scorer:Scorer.t -> unit -> t
(** [scorer] defaults to {!Scorer.default_bm25}. *)

val index_document : t -> int -> text:string -> unit
(** Tokenizes [text] through {!Tokenizer.terms} and (re)indexes it. *)

val index_terms : t -> int -> string list -> unit
(** Index pre-tokenized terms (callers that mix title/URL/body fields
    tokenize each field themselves). *)

val remove_document : t -> int -> unit
val document_count : t -> int

val query : ?limit:int -> t -> string -> result list
(** Parse the query through the same term pipeline and rank. *)

val query_terms : ?limit:int -> t -> string list -> result list
(** Rank against pre-normalized terms (no tokenization applied). *)

val index : t -> Inverted_index.t
(** The underlying inverted index (shared, not a copy). *)
