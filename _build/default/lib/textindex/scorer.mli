(** Relevance scoring functions over an {!Inverted_index}. *)

type t = Tf_idf | Bm25 of { k1 : float; b : float }

val default_bm25 : t
(** BM25 with the conventional k1 = 1.2, b = 0.75. *)

val idf : Inverted_index.t -> string -> float
(** Smoothed idf: [log (1 + (N - df + 0.5) / (df + 0.5))]; 0 when the
    index is empty. *)

val score_document : t -> Inverted_index.t -> terms:string list -> doc:int -> float
(** Score of one document against a bag of query terms. *)

val scores : t -> Inverted_index.t -> terms:string list -> (int * float) list
(** All documents with a positive score, descending; ties broken by
    ascending doc id for determinism. *)
