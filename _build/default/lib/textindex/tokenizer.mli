(** Tokenization of page titles, body text and URLs into index terms.

    Terms are lowercased ASCII alphanumeric runs.  URL tokenization also
    splits on punctuation so that ["http://wine.example/cellar-list"]
    yields ["http"; "wine"; "example"; "cellar"; "list"] — matching how a
    browser's textual history search matches against URLs. *)

val tokenize : string -> string list
(** Tokens in order of appearance, lowercased, no filtering. *)

val tokenize_url : string -> string list
(** Like {!tokenize} but also splits URL punctuation ([:/?&=.#_-]). *)

val terms : ?stem:bool -> string -> string list
(** Pipeline used by the indexes: tokenize, drop stopwords and
    single-character tokens, optionally stem ([stem] defaults to
    [true]). *)

val terms_of_url : ?stem:bool -> string -> string list
(** {!terms} with URL splitting. *)
