module S = Provkit_util.Strutil

let check_sl = Alcotest.check (Alcotest.list Alcotest.string)
let check_s = Alcotest.check Alcotest.string
let check_b = Alcotest.check Alcotest.bool

let test_split () =
  check_sl "basic" [ "a"; "b"; "c" ] (S.split_on_chars ~chars:[ ' ' ] "a b c");
  check_sl "multiple seps" [ "a"; "b" ] (S.split_on_chars ~chars:[ ' '; ',' ] "a, b");
  check_sl "empty fields dropped" [ "x" ] (S.split_on_chars ~chars:[ '/' ] "//x//");
  check_sl "empty string" [] (S.split_on_chars ~chars:[ ' ' ] "")

let test_prefix_suffix () =
  check_b "prefix yes" true (S.is_prefix ~prefix:"http" "http://x");
  check_b "prefix no" false (S.is_prefix ~prefix:"https" "http://x");
  check_b "empty prefix" true (S.is_prefix ~prefix:"" "anything");
  check_b "suffix yes" true (S.is_suffix ~suffix:".zip" "file.zip");
  check_b "suffix no" false (S.is_suffix ~suffix:".zip" "file.tar");
  check_b "prefix longer than string" false (S.is_prefix ~prefix:"abc" "ab")

let test_contains () =
  check_b "middle" true (S.contains_substring ~needle:"bc" "abcd");
  check_b "absent" false (S.contains_substring ~needle:"xyz" "abcd");
  check_b "empty needle" true (S.contains_substring ~needle:"" "abcd");
  check_b "full match" true (S.contains_substring ~needle:"abcd" "abcd");
  check_b "needle longer" false (S.contains_substring ~needle:"abcde" "abcd")

let test_truncate () =
  check_s "short unchanged" "abc" (S.truncate 10 "abc");
  check_s "exact unchanged" "abc" (S.truncate 3 "abc");
  check_s "ellipsis" "abcde..." (S.truncate 8 "abcdefghij");
  check_s "tiny limit" "ab" (S.truncate 2 "abcdefghij")

let test_pad () =
  check_s "right" "ab  " (S.pad_right 4 "ab");
  check_s "left" "  ab" (S.pad_left 4 "ab");
  check_s "no pad needed" "abcd" (S.pad_right 2 "abcd")

let test_repeat () =
  check_s "three" "ababab" (S.repeat 3 "ab");
  check_s "zero" "" (S.repeat 0 "x")

let test_join () = check_s "join" "a,b,c" (S.join ~sep:"," [ "a"; "b"; "c" ])

let suite =
  [
    Alcotest.test_case "split_on_chars" `Quick test_split;
    Alcotest.test_case "prefix/suffix" `Quick test_prefix_suffix;
    Alcotest.test_case "contains_substring" `Quick test_contains;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "pad" `Quick test_pad;
    Alcotest.test_case "repeat" `Quick test_repeat;
    Alcotest.test_case "join" `Quick test_join;
  ]
