(* Event-stream persistence: codec round trips and replay equivalence. *)

module F = Core_fixtures
module Engine = Browser.Engine
module Event = Browser.Event
module EC = Browser.Event_codec

let recorded_events seed =
  let _web, engine, _api, _trace = F.simulated ~seed ~days:1 () in
  Engine.event_log engine

let test_roundtrip_real_stream () =
  let events = recorded_events 81 in
  Alcotest.(check bool) "non-trivial stream" true (List.length events > 200);
  let decoded = EC.of_bytes (EC.to_bytes events) in
  Alcotest.(check int) "count preserved" (List.length events) (List.length decoded);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "event preserved" (Event.describe a) (Event.describe b);
      Alcotest.(check int) "time preserved" (Event.time a) (Event.time b))
    events decoded

let test_replay_rebuilds_equivalent_stores () =
  let events = recorded_events 82 in
  (* Feed the recorded stream to a fresh Places store and a fresh
     provenance capture; both must equal the live ones. *)
  let places = Browser.Places_db.create () in
  let capture, feed_capture = Core.Capture.observer () in
  EC.replay events [ Browser.Places_db.apply_event places; feed_capture ];
  let store = Core.Capture.store capture in
  Alcotest.(check bool) "visits rebuilt" true (Browser.Places_db.visit_count places > 40);
  Alcotest.(check bool) "provenance rebuilt" true (Core.Prov_store.node_count store > 40);
  Alcotest.(check bool) "acyclic after replay" true (Core.Versioning.is_acyclic store);
  (* And a decode->replay round trip gives the same counts. *)
  let places2 = Browser.Places_db.create () in
  EC.replay (EC.of_bytes (EC.to_bytes events)) [ Browser.Places_db.apply_event places2 ];
  Alcotest.(check int) "places parity through bytes"
    (Browser.Places_db.visit_count places)
    (Browser.Places_db.visit_count places2)

let test_truncation_and_magic () =
  let events = recorded_events 83 in
  let bytes = EC.to_bytes events in
  let cut = EC.of_bytes (String.sub bytes 0 (String.length bytes / 2)) in
  Alcotest.(check bool) "prefix recovered" true
    (List.length cut < List.length events && List.length cut > 0);
  (* Strict mode raises on a cut that is guaranteed mid-record: one byte
     past the clean prefix we just recovered. *)
  let clean = String.length (EC.to_bytes cut) in
  (try
     ignore (EC.of_bytes ~tolerate_truncation:false (String.sub bytes 0 (clean + 1)));
     Alcotest.fail "strict mode should raise"
   with Relstore.Errors.Corrupt _ -> ());
  try
    ignore (EC.of_bytes "WRONGMAGIC");
    Alcotest.fail "bad magic accepted"
  with Relstore.Errors.Corrupt _ -> ()

let test_save_load () =
  let events = recorded_events 84 in
  let path = Filename.temp_file "events" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      EC.save ~path events;
      Alcotest.(check int) "disk round trip" (List.length events)
        (List.length (EC.load ~path)))

let suite =
  [
    Alcotest.test_case "roundtrip real stream" `Quick test_roundtrip_real_stream;
    Alcotest.test_case "replay rebuilds stores" `Quick test_replay_rebuilds_equivalent_stores;
    Alcotest.test_case "truncation and magic" `Quick test_truncation_and_magic;
    Alcotest.test_case "save/load" `Quick test_save_load;
  ]
