(* Prov_node/Prov_edge taxonomies, the Prov_store graph, Time_index and
   Query_budget. *)

module PN = Core.Prov_node
module PE = Core.Prov_edge
module Store = Core.Prov_store
module TI = Core.Time_index
module QB = Core.Query_budget
module Transition = Browser.Transition

(* --- node/edge taxonomies --- *)

let test_node_kind_codes_distinct () =
  let kinds =
    [
      PN.Page { url = "u"; title = "t" };
      PN.Visit { url = "u"; title = "t"; transition = Transition.Link; tab = 1 };
      PN.Bookmark { title = "t"; url = "u" };
      PN.Download { source_url = "u"; target_path = "p" };
      PN.Search_term { query = "q" };
      PN.Form_submission { fields = [] };
    ]
  in
  Alcotest.(check int) "codes distinct" (List.length kinds)
    (List.length (List.sort_uniq Int.compare (List.map PN.kind_code kinds)))

let test_node_text_terms () =
  let node kind = { PN.id = 1; kind; time = None; close_time = None } in
  let terms =
    PN.text_terms (node (PN.Page { url = "http://wine.example/cellar"; title = "Red Wines" }))
  in
  Alcotest.(check bool) "title term" true (List.mem "red" terms);
  Alcotest.(check bool) "url term" true (List.mem "wine" terms);
  let qterms = PN.text_terms (node (PN.Search_term { query = "plane tickets" })) in
  Alcotest.(check bool) "query terms" true (List.mem "plane" qterms && List.mem "ticket" qterms);
  let fterms = PN.text_terms (node (PN.Form_submission { fields = [ ("q", "gardening") ] })) in
  Alcotest.(check bool) "form value terms" true (List.mem "garden" fterms)

let test_edge_kind_codes_roundtrip () =
  List.iter
    (fun k -> Alcotest.(check bool) "roundtrip" true (PE.kind_of_code (PE.kind_code k) = k))
    PE.all_kinds;
  Alcotest.(check bool) "same_time not causal" false (PE.is_causal PE.Same_time);
  Alcotest.(check bool) "link causal" true (PE.is_causal PE.Link_traversal);
  Alcotest.(check bool) "redirect not user action" false (PE.is_user_action PE.Redirect)

(* --- store --- *)

let test_store_page_dedup () =
  let s = Store.create () in
  let p1 = Store.add_page s ~url:"http://x/1" ~title:"first" ~time:1 in
  let p2 = Store.add_page s ~url:"http://x/1" ~title:"renamed" ~time:2 in
  let p3 = Store.add_page s ~url:"http://x/2" ~title:"other" ~time:3 in
  Alcotest.(check int) "same url same node" p1 p2;
  Alcotest.(check bool) "different url" true (p1 <> p3);
  (match (Store.node s p1).PN.kind with
  | PN.Page { title; _ } -> Alcotest.(check string) "title refreshed" "renamed" title
  | _ -> Alcotest.fail "not a page");
  Alcotest.(check (option int)) "lookup" (Some p1) (Store.page_of_url s "http://x/1")

let test_store_visits_and_instances () =
  let s = Store.create () in
  let v1 =
    Store.add_visit s ~engine_visit:10 ~url:"http://x/1" ~title:"t"
      ~transition:Transition.Link ~tab:1 ~time:5
  in
  let v2 =
    Store.add_visit s ~engine_visit:11 ~url:"http://x/1" ~title:"t"
      ~transition:Transition.Typed ~tab:1 ~time:9
  in
  let page = Option.get (Store.page_of_url s "http://x/1") in
  Alcotest.(check (list int)) "instances" [ v1; v2 ] (Store.visits_of_page s page);
  Alcotest.(check int) "visit count" 2 (Store.page_visit_count s page);
  Alcotest.(check (option int)) "page of visit" (Some page) (Store.page_of_visit s v1);
  Alcotest.(check (option int)) "engine id mapping" (Some v1) (Store.visit_node s 10);
  Alcotest.(check (option int)) "unknown engine id" None (Store.visit_node s 999)

let test_store_close_visit () =
  let s = Store.create () in
  let v =
    Store.add_visit s ~engine_visit:1 ~url:"http://x" ~title:"" ~transition:Transition.Link
      ~tab:1 ~time:100
  in
  Store.close_visit s ~engine_visit:1 ~time:150;
  Alcotest.(check (option int)) "close recorded" (Some 150) (Store.node s v).PN.close_time;
  Store.close_visit s ~engine_visit:42 ~time:1 (* unknown: no-op *)

let test_store_term_dedup_and_normalization () =
  let s = Store.create () in
  let t1 = Store.add_search_term s ~query:"Wine " ~time:1 in
  let t2 = Store.add_search_term s ~query:"wine" ~time:2 in
  Alcotest.(check int) "normalized dedup" t1 t2;
  Alcotest.(check (option int)) "lookup normalized" (Some t1) (Store.term_node s "  WINE ")

let test_store_hidden_pages () =
  let s = Store.create () in
  let _ =
    Store.add_visit s ~engine_visit:1 ~url:"http://img/1" ~title:""
      ~transition:Transition.Embed ~tab:1 ~time:1
  in
  let img = Option.get (Store.page_of_url s "http://img/1") in
  Alcotest.(check bool) "embed-only page hidden" true (Store.page_hidden s img);
  let _ =
    Store.add_visit s ~engine_visit:2 ~url:"http://img/1" ~title:""
      ~transition:Transition.Link ~tab:1 ~time:2
  in
  Alcotest.(check bool) "link visit reveals" false (Store.page_hidden s img);
  let p = Store.add_page s ~url:"http://never-visited" ~title:"" ~time:1 in
  Alcotest.(check bool) "no visits, not hidden" false (Store.page_hidden s p)

let test_store_stats () =
  let s = Store.create () in
  let v =
    Store.add_visit s ~engine_visit:1 ~url:"http://x" ~title:"" ~transition:Transition.Link
      ~tab:1 ~time:1
  in
  let d = Store.add_download s ~engine_download:1 ~source_url:"http://x" ~target_path:"/f" ~time:2 in
  Store.add_edge s ~src:v ~dst:d PE.Download_source ~time:2;
  let stats = Store.stats s in
  Alcotest.(check int) "nodes" 3 stats.Store.nodes_total;
  Alcotest.(check int) "edges" 2 stats.Store.edges_total;
  Alcotest.(check (option int)) "by kind" (Some 1)
    (List.assoc_opt "download" stats.Store.nodes_by_kind)

let test_store_restore () =
  let s = Store.create () in
  Store.restore_node s
    { PN.id = 7; kind = PN.Page { url = "http://x"; title = "t" }; time = Some 1; close_time = None };
  Store.restore_node s
    {
      PN.id = 9;
      kind = PN.Visit { url = "http://x"; title = "t"; transition = Transition.Link; tab = 0 };
      time = Some 2;
      close_time = None;
    };
  Store.restore_edge s ~src:7 ~dst:9 { PE.kind = PE.Instance; time = 2 };
  Alcotest.(check (option int)) "url lookup restored" (Some 7) (Store.page_of_url s "http://x");
  Alcotest.(check (option int)) "instance restored" (Some 7) (Store.page_of_visit s 9);
  (* Fresh ids continue above restored ones. *)
  let p = Store.add_page s ~url:"http://y" ~title:"" ~time:3 in
  Alcotest.(check bool) "next id above max" true (p > 9)

(* --- time index --- *)

let test_time_index_intervals () =
  let ti = TI.create () in
  TI.add ti ~node:1 ~opened:100;
  TI.close ti ~node:1 ~closed:200;
  TI.add ti ~node:2 ~opened:150;
  TI.close ti ~node:2 ~closed:300;
  TI.add ti ~node:3 ~opened:400;
  Alcotest.(check (option (pair int (option int)))) "interval" (Some (100, Some 200))
    (TI.interval ti 1);
  Alcotest.(check int) "size" 3 (TI.size ti);
  Alcotest.(check (list int)) "open at 170" [ 1; 2 ] (TI.currently_open ti ~at:170);
  Alcotest.(check (list int)) "open at 350" [] (TI.currently_open ti ~at:350);
  Alcotest.(check (list int)) "unclosed extends" [ 3 ] (TI.currently_open ti ~at:10_000);
  Alcotest.(check (list int)) "co-open of 1" [ 2 ] (TI.co_open ti ~node:1);
  Alcotest.(check bool) "overlap symmetric" true (TI.overlap ti 1 2 && TI.overlap ti 2 1);
  Alcotest.(check bool) "no overlap" false (TI.overlap ti 1 3);
  Alcotest.(check (list int)) "window query" [ 1; 2 ] (TI.in_window ti ~start:0 ~stop:320);
  Alcotest.(check (option (pair int int))) "direction by open order" (Some (1, 2))
    (TI.direction ti 1 2);
  Alcotest.(check (option (pair int int))) "direction reversed args" (Some (1, 2))
    (TI.direction ti 2 1)

let test_time_index_close_clamps () =
  let ti = TI.create () in
  TI.add ti ~node:1 ~opened:100;
  TI.close ti ~node:1 ~closed:50;
  Alcotest.(check (option (pair int (option int)))) "clamped up" (Some (100, Some 100))
    (TI.interval ti 1);
  TI.close ti ~node:99 ~closed:1 (* unknown: no-op *)

let prop_time_index_overlap_symmetric =
  QCheck.Test.make ~name:"interval overlap is symmetric" ~count:200
    QCheck.(
      quad (int_bound 1000) (int_bound 500) (int_bound 1000) (int_bound 500))
    (fun (o1, d1, o2, d2) ->
      let ti = TI.create () in
      TI.add ti ~node:1 ~opened:o1;
      TI.close ti ~node:1 ~closed:(o1 + d1);
      TI.add ti ~node:2 ~opened:o2;
      TI.close ti ~node:2 ~closed:(o2 + d2);
      TI.overlap ti 1 2 = TI.overlap ti 2 1
      && TI.overlap ti 1 2 = (o1 <= o2 + d2 && o2 <= o1 + d1))

(* --- query budget --- *)

let test_budget_unlimited () =
  let r = QB.start QB.unlimited in
  Alcotest.(check bool) "no deadline" false (QB.out_of_time r);
  Alcotest.(check (option int)) "no node cap" None (QB.remaining_nodes r);
  QB.consume_nodes r 1_000_000;
  Alcotest.(check bool) "never exhausted" false (QB.exhausted r)

let test_budget_nodes () =
  let r = QB.start { QB.deadline_ms = None; node_budget = Some 100 } in
  QB.consume_nodes r 60;
  Alcotest.(check (option int)) "remaining" (Some 40) (QB.remaining_nodes r);
  QB.consume_nodes r 60;
  Alcotest.(check (option int)) "floored at zero" (Some 0) (QB.remaining_nodes r);
  Alcotest.(check bool) "exhausted" true (QB.exhausted r);
  Alcotest.(check bool) "truncation combined" true (QB.was_truncated r false)

let test_budget_deadline () =
  let r = QB.start (QB.deadline 0.000001) in
  (* Burn a little time. *)
  ignore (Sys.opaque_identity (List.init 10000 Fun.id));
  Alcotest.(check bool) "deadline passes" true (QB.out_of_time r);
  Alcotest.(check bool) "elapsed positive" true (QB.elapsed_ms r > 0.0)

let test_budget_paper_default () =
  Alcotest.(check (option (float 1e-9))) "200ms" (Some 200.0) QB.paper_default.QB.deadline_ms;
  Alcotest.(check bool) "node cap set" true (QB.paper_default.QB.node_budget <> None)

let suite =
  [
    Alcotest.test_case "node kind codes" `Quick test_node_kind_codes_distinct;
    Alcotest.test_case "node text terms" `Quick test_node_text_terms;
    Alcotest.test_case "edge kind codes" `Quick test_edge_kind_codes_roundtrip;
    Alcotest.test_case "page dedup" `Quick test_store_page_dedup;
    Alcotest.test_case "visits and instances" `Quick test_store_visits_and_instances;
    Alcotest.test_case "close visit" `Quick test_store_close_visit;
    Alcotest.test_case "term dedup" `Quick test_store_term_dedup_and_normalization;
    Alcotest.test_case "hidden pages" `Quick test_store_hidden_pages;
    Alcotest.test_case "stats" `Quick test_store_stats;
    Alcotest.test_case "restore" `Quick test_store_restore;
    Alcotest.test_case "time index intervals" `Quick test_time_index_intervals;
    Alcotest.test_case "time index clamping" `Quick test_time_index_close_clamps;
    QCheck_alcotest.to_alcotest prop_time_index_overlap_symmetric;
    Alcotest.test_case "budget unlimited" `Quick test_budget_unlimited;
    Alcotest.test_case "budget nodes" `Quick test_budget_nodes;
    Alcotest.test_case "budget deadline" `Quick test_budget_deadline;
    Alcotest.test_case "budget paper default" `Quick test_budget_paper_default;
  ]
