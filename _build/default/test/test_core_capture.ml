(* The capture layer: which events become which nodes/edges, the
   Firefox-fidelity ablation, and the acyclicity invariant under random
   browsing. *)

module F = Core_fixtures
module Engine = Browser.Engine
module Store = Core.Prov_store
module PE = Core.Prov_edge
module PN = Core.Prov_node
module Digraph = Provgraph.Digraph
module Transition = Browser.Transition

let edges_between store src dst =
  List.filter_map
    (fun (d, (e : PE.t)) -> if d = dst then Some e.PE.kind else None)
    (Digraph.out_edges (Store.graph store) src)

let visit_node store (info : Engine.visit_info) =
  Option.get (Store.visit_node store info.Engine.visit_id)

let test_link_traversal_edge () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v1 = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let v2 = Engine.visit_link engine ~time:30 ~tab (F.hub web) in
  let n1 = visit_node store v1 and n2 = visit_node store v2 in
  Alcotest.(check bool) "link edge" true (List.mem PE.Link_traversal (edges_between store n1 n2))

let test_typed_edge_kept_by_full_capture () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v1 = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let v2 = Engine.visit_typed engine ~time:30 ~tab (F.hub web) in
  let n1 = visit_node store v1 and n2 = visit_node store v2 in
  Alcotest.(check bool) "typed edge captured" true
    (List.mem PE.Typed_traversal (edges_between store n1 n2))

let test_typed_edge_dropped_by_firefox_capture () =
  let web, engine, api = F.make ~capture_config:Core.Capture.firefox_like () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v1 = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let v2 = Engine.visit_typed engine ~time:30 ~tab (F.hub web) in
  let n1 = visit_node store v1 and n2 = visit_node store v2 in
  Alcotest.(check (list unit)) "no relationship (the paper's complaint)" []
    (List.map (fun _ -> ()) (edges_between store n1 n2))

let test_instance_edges () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let n = visit_node store v in
  let page = Option.get (Store.page_of_visit store n) in
  Alcotest.(check bool) "instance edge" true (List.mem PE.Instance (edges_between store page n))

let test_search_capture () =
  let _web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let serp1, _ = Engine.search engine ~time:20 ~tab "rosebud" in
  let serp2, _ = Engine.search engine ~time:30 ~tab "rosebud" in
  let term = Option.get (Store.term_node store "rosebud") in
  let s1 = visit_node store serp1 and s2 = visit_node store serp2 in
  Alcotest.(check bool) "term -> serp1" true (List.mem PE.Search_query (edges_between store term s1));
  Alcotest.(check bool) "term -> serp2" true (List.mem PE.Search_query (edges_between store term s2));
  (* One term node for both searches. *)
  Alcotest.(check int) "term deduped" 1
    (List.length (Store.nodes_of_kind store PN.is_search_term))

let test_searched_from_only_on_fresh_terms () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v0 = Engine.visit_typed engine ~time:15 ~tab (F.article web) in
  let _ = Engine.search engine ~time:20 ~tab "wine" in
  let term = Option.get (Store.term_node store "wine") in
  let n0 = visit_node store v0 in
  Alcotest.(check bool) "fresh term gets searched-from" true
    (List.mem PE.Searched_from (edges_between store n0 term));
  (* Search the same query later from a different page: no new edge
     into the (old) term node — that is the cycle the versioning rule
     prevents. *)
  let v1 = Engine.visit_link engine ~time:30 ~tab (F.hub web) in
  let _ = Engine.search engine ~time:40 ~tab "wine" in
  let n1 = visit_node store v1 in
  Alcotest.(check (list unit)) "no edge into reused term" []
    (List.map (fun _ -> ()) (edges_between store n1 term))

let test_bookmark_capture () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let b = Engine.add_bookmark engine ~time:30 ~tab in
  let bnode = Option.get (Store.bookmark_node store b) in
  let vn = visit_node store v in
  Alcotest.(check bool) "bookmarked-from" true
    (List.mem PE.Bookmarked_from (edges_between store vn bnode));
  let v2 = Engine.visit_bookmark engine ~time:40 ~tab ~bookmark:b in
  let n2 = visit_node store v2 in
  Alcotest.(check bool) "bookmark traversal" true
    (List.mem PE.Bookmark_traversal (edges_between store bnode n2))

let test_download_capture () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let host = F.first_of_kind web Webmodel.Page_content.Download_host in
  let hv = Engine.visit_typed engine ~time:20 ~tab host in
  let file = F.file_of_host web host in
  let download_id, fetch = Engine.download engine ~time:30 ~tab ~file_page:file in
  let dnode = Option.get (Store.download_node store download_id) in
  Alcotest.(check bool) "source edge" true
    (List.mem PE.Download_source (edges_between store (visit_node store hv) dnode));
  Alcotest.(check bool) "fetch edge" true
    (List.mem PE.Download_fetch (edges_between store (visit_node store fetch) dnode))

let test_form_capture () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let result =
    Engine.submit_form engine ~time:30 ~tab ~fields:[ ("q", "roses") ]
      ~result_page:(F.hub web)
  in
  let fnode =
    match Store.nodes_of_kind store (fun n -> match n.PN.kind with PN.Form_submission _ -> true | _ -> false) with
    | [ f ] -> f
    | other -> Alcotest.failf "expected one form node, got %d" (List.length other)
  in
  Alcotest.(check bool) "form source" true
    (List.mem PE.Form_source (edges_between store (visit_node store v) fnode));
  Alcotest.(check bool) "form result" true
    (List.mem PE.Form_result (edges_between store fnode (visit_node store result)))

let test_reload_edge () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v1 = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let v2 = Engine.reload engine ~time:30 ~tab in
  let n1 = visit_node store v1 and n2 = visit_node store v2 in
  Alcotest.(check bool) "reload edge between instances" true
    (List.mem PE.Reload (edges_between store n1 n2));
  (* Both instances belong to the same page node - the reload cycle is
     broken by versioning exactly like any revisit (S3.1). *)
  Alcotest.(check bool) "same page object" true
    (Store.page_of_visit store n1 = Store.page_of_visit store n2);
  Alcotest.(check bool) "still acyclic" true (Core.Versioning.is_acyclic store)

let test_tab_spawn_edge () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let tab2 = Engine.open_tab engine ~time:30 ~opener:tab () in
  let v2 = Engine.visit_typed engine ~time:40 ~tab:tab2 (F.hub web) in
  Alcotest.(check bool) "tab spawn edge" true
    (List.mem PE.Tab_spawn (edges_between store (visit_node store v) (visit_node store v2)))

let test_same_time_edges_and_close_times () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let ti = Core.Api.time_index api in
  let tab_a = Engine.open_tab engine ~time:10 () in
  let va = Engine.visit_typed engine ~time:20 ~tab:tab_a (F.article web) in
  let tab_b = Engine.open_tab engine ~time:25 () in
  let vb = Engine.visit_typed engine ~time:30 ~tab:tab_b (F.hub web) in
  let na = visit_node store va and nb = visit_node store vb in
  (* The earlier-opened visit points at the later one (S3.2's rule). *)
  Alcotest.(check bool) "same-time edge directed by open order" true
    (List.mem PE.Same_time (edges_between store na nb));
  Alcotest.(check bool) "no reverse edge" false
    (List.mem PE.Same_time (edges_between store nb na));
  Engine.close_tab engine ~time:50 tab_a;
  Alcotest.(check (option int)) "close time on node" (Some 50) (Store.node store na).PN.close_time;
  Alcotest.(check (option (pair int (option int)))) "interval closed" (Some (20, Some 50))
    (Core.Time_index.interval ti na)

let test_firefox_capture_drops_everything_extra () =
  let web, engine, api = F.make ~capture_config:Core.Capture.firefox_like () in
  let store = Core.Api.store api in
  let tab = Engine.open_tab engine ~time:10 () in
  let v = Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let _ = Engine.search engine ~time:30 ~tab "wine" in
  let _b = Engine.add_bookmark engine ~time:40 ~tab in
  Engine.close_tab engine ~time:50 tab;
  Alcotest.(check (list int)) "no term nodes" []
    (Store.nodes_of_kind store PN.is_search_term);
  Alcotest.(check (list int)) "no bookmark nodes" []
    (Store.nodes_of_kind store (fun n -> match n.PN.kind with PN.Bookmark _ -> true | _ -> false));
  let n = visit_node store v in
  Alcotest.(check (option int)) "no close times" None (Store.node store n).PN.close_time;
  let has_time_edges = ref false in
  Digraph.iter_edges (Store.graph store) (fun _ _ (e : PE.t) ->
      if e.PE.kind = PE.Same_time then has_time_edges := true);
  Alcotest.(check bool) "no time edges" false !has_time_edges

let test_observer_replay_equivalence () =
  (* Feeding a recorded event log through a detached observer must build
     the same store as live capture. *)
  let _web, engine, api, _trace = F.simulated ~days:1 () in
  let live = Core.Api.store api in
  let replayed, feed = Core.Capture.observer () in
  List.iter feed (Engine.event_log engine);
  let rstore = Core.Capture.store replayed in
  Alcotest.(check int) "same nodes" (Store.node_count live) (Store.node_count rstore);
  Alcotest.(check int) "same edges" (Store.edge_count live) (Store.edge_count rstore)

let prop_acyclic_under_random_browsing =
  QCheck.Test.make ~name:"causal provenance is always a DAG (S3.1)" ~count:8
    (QCheck.make QCheck.Gen.(int_bound 10_000)) (fun seed ->
      let _web, _engine, api, _trace = F.simulated ~seed ~days:1 () in
      Core.Versioning.is_acyclic (Core.Api.store api))

let prop_edges_time_monotone =
  QCheck.Test.make ~name:"causal edges never point back in time" ~count:5
    (QCheck.make QCheck.Gen.(int_bound 10_000)) (fun seed ->
      let _web, _engine, api, _trace = F.simulated ~seed ~days:1 () in
      let store = Core.Api.store api in
      let ok = ref true in
      Digraph.iter_edges (Store.graph store) (fun src dst (e : PE.t) ->
          if PE.is_causal e.PE.kind then begin
            let t_of n = Option.value ~default:0 (Store.node store n).PN.time in
            if t_of src > t_of dst then ok := false
          end);
      !ok)

let suite =
  [
    Alcotest.test_case "link traversal edge" `Quick test_link_traversal_edge;
    Alcotest.test_case "typed edge kept (full)" `Quick test_typed_edge_kept_by_full_capture;
    Alcotest.test_case "typed edge dropped (firefox)" `Quick test_typed_edge_dropped_by_firefox_capture;
    Alcotest.test_case "instance edges" `Quick test_instance_edges;
    Alcotest.test_case "search capture" `Quick test_search_capture;
    Alcotest.test_case "searched-from versioning rule" `Quick test_searched_from_only_on_fresh_terms;
    Alcotest.test_case "bookmark capture" `Quick test_bookmark_capture;
    Alcotest.test_case "download capture" `Quick test_download_capture;
    Alcotest.test_case "form capture" `Quick test_form_capture;
    Alcotest.test_case "reload edge" `Quick test_reload_edge;
    Alcotest.test_case "tab spawn edge" `Quick test_tab_spawn_edge;
    Alcotest.test_case "same-time edges and closes" `Quick test_same_time_edges_and_close_times;
    Alcotest.test_case "firefox capture drops extras" `Quick test_firefox_capture_drops_everything_extra;
    Alcotest.test_case "observer replay equivalence" `Quick test_observer_replay_equivalence;
    QCheck_alcotest.to_alcotest prop_acyclic_under_random_browsing;
    QCheck_alcotest.to_alcotest prop_edges_time_monotone;
  ]
