(* Shared fixtures for the core provenance tests: a small synthetic web,
   an engine with full capture attached, and scripted browsing
   helpers. *)

module Web = Webmodel.Web_graph
module Page = Webmodel.Page_content
module Engine = Browser.Engine

let small_web_config =
  {
    Web.default_config with
    Web.n_topics = 4;
    sites_per_topic = 2;
    articles_per_site = 5;
    ambiguous_terms = 2;
  }

let make ?(capture_config = Core.Capture.full) ?(seed = 11) () =
  let web = Web.generate ~config:small_web_config ~seed () in
  let se = Webmodel.Search_engine.build web in
  let engine = Engine.create ~web ~search:se () in
  let api = Core.Api.attach ~capture_config engine in
  (web, engine, api)

let first_of_kind web kind =
  let rec scan i =
    if i >= Web.page_count web then failwith "kind not found"
    else if (Web.page web i).Page.kind = kind then i
    else scan (i + 1)
  in
  scan 0

let article web = first_of_kind web Page.Article
let hub web = first_of_kind web Page.Hub

let file_of_host web host =
  Array.to_list (Web.page web host).Page.links
  |> List.find (fun l -> (Web.page web l).Page.kind = Page.File)

(* Run the stochastic user model briefly over a fresh engine+capture. *)
let simulated ?(capture_config = Core.Capture.full) ?(seed = 3) ?(days = 2) () =
  let web = Web.generate ~config:small_web_config ~seed () in
  let se = Webmodel.Search_engine.build web in
  let engine = Engine.create ~web ~search:se () in
  let api = Core.Api.attach ~capture_config engine in
  let rng = Provkit_util.Prng.create (seed + 1) in
  let config =
    {
      Browser.User_model.default_config with
      Browser.User_model.days;
      sessions_per_day = 3;
      actions_per_session = 15;
    }
  in
  let trace = Browser.User_model.run ~config ~rng engine in
  (web, engine, api, trace)
