(* Relational persistence of the provenance graph: round trips, the
   factorized columns, versioning-strategy comparison, derived time
   edges. *)

module F = Core_fixtures
module Store = Core.Prov_store
module PS = Core.Prov_schema
module PN = Core.Prov_node
module PE = Core.Prov_edge
module Digraph = Provgraph.Digraph

let edge_multiset store =
  let acc = ref [] in
  Digraph.iter_edges (Store.graph store) (fun src dst (e : PE.t) ->
      acc := (src, dst, PE.kind_code e.PE.kind, e.PE.time) :: !acc);
  List.sort compare !acc

let causal_edge_multiset store =
  List.filter (fun (_, _, k, _) -> k <> PE.kind_code PE.Same_time) (edge_multiset store)

let node_list store =
  List.map
    (fun id -> (id, Store.node store id))
    (Digraph.nodes (Store.graph store))

let test_roundtrip_preserves_graph () =
  let _web, _engine, api, _trace = F.simulated ~days:1 () in
  let store = Core.Api.store api in
  let db = PS.to_database store in
  let store' = PS.of_database db in
  Alcotest.(check int) "node count" (Store.node_count store) (Store.node_count store');
  (* Every node survives with its kind, times, and text. *)
  List.iter2
    (fun (id, (n : PN.t)) (id', (n' : PN.t)) ->
      Alcotest.(check int) "id" id id';
      Alcotest.(check int) "kind" (PN.kind_code n.PN.kind) (PN.kind_code n'.PN.kind);
      Alcotest.(check (option int)) "time" n.PN.time n'.PN.time;
      Alcotest.(check (option int)) "close" n.PN.close_time n'.PN.close_time;
      Alcotest.(check (list string)) "text terms" (PN.text_terms n) (PN.text_terms n'))
    (node_list store) (node_list store');
  (* Causal edges survive exactly. *)
  Alcotest.(check bool) "causal edges equal" true
    (causal_edge_multiset store = causal_edge_multiset store');
  (* Same_time edges are re-derived: all must connect genuinely
     overlapping displayed visits. *)
  let ti = Core.Time_edges.rebuild_time_index store' in
  Digraph.iter_edges (Store.graph store') (fun src dst (e : PE.t) ->
      if e.PE.kind = PE.Same_time then
        Alcotest.(check bool) "derived time edge overlaps" true
          (Core.Time_index.overlap ti src dst))

let test_roundtrip_via_bytes () =
  let _web, _engine, api, _trace = F.simulated ~days:1 ~seed:8 () in
  let store = Core.Api.store api in
  let db = PS.to_database store in
  let db' = Relstore.Database.of_bytes (Relstore.Database.to_bytes db) in
  let store' = PS.of_database db' in
  Alcotest.(check int) "nodes survive byte serialization" (Store.node_count store)
    (Store.node_count store')

let test_visit_rows_are_normalized () =
  let _web, _engine, api, _trace = F.simulated ~days:1 () in
  let db = PS.to_database (Core.Api.store api) in
  let nodes = Relstore.Database.table db PS.node_table in
  let schema = Relstore.Table.schema nodes in
  Relstore.Table.iter nodes (fun _ row ->
      if Relstore.Row.int schema row "kind" = 1 then begin
        (* visit *)
        Alcotest.(check (option string)) "no url on visit rows" None
          (Relstore.Row.text_opt schema row "url");
        Alcotest.(check bool) "page column set" true
          (Relstore.Row.int_opt schema row "page" <> None)
      end)

let test_no_same_time_rows_persisted () =
  let _web, _engine, api, _trace = F.simulated ~days:1 () in
  let db = PS.to_database (Core.Api.store api) in
  let edges = Relstore.Database.table db PS.edge_table in
  let schema = Relstore.Table.schema edges in
  Relstore.Table.iter edges (fun _ row ->
      Alcotest.(check bool) "not same-time" true
        (Relstore.Row.int schema row "kind" <> PE.kind_code PE.Same_time))

let test_form_fields_in_attr_table () =
  let web, engine, api = F.make () in
  let tab = Browser.Engine.open_tab engine ~time:10 () in
  let _ = Browser.Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let _ =
    Browser.Engine.submit_form engine ~time:30 ~tab
      ~fields:[ ("q", "roses"); ("lang", "en") ] ~result_page:(F.hub web)
  in
  let store = Core.Api.store api in
  let db = PS.to_database store in
  Alcotest.(check int) "two attr rows" 2
    (Relstore.Table.row_count (Relstore.Database.table db PS.attr_table));
  let store' = PS.of_database db in
  let forms =
    Store.nodes_of_kind store' (fun n ->
        match n.PN.kind with PN.Form_submission _ -> true | _ -> false)
  in
  match forms with
  | [ f ] -> begin
    match (Store.node store' f).PN.kind with
    | PN.Form_submission { fields } ->
      Alcotest.(check (list (pair string string))) "fields round trip"
        [ ("lang", "en"); ("q", "roses") ]
        (List.sort compare fields)
    | _ -> Alcotest.fail "not a form"
  end
  | other -> Alcotest.failf "expected one form node, got %d" (List.length other)

(* --- versioning strategies (S3.1) --- *)

let test_versioned_store_acyclic_projection_not () =
  let _web, _engine, api, _trace = F.simulated ~days:2 () in
  let store = Core.Api.store api in
  let c = Core.Versioning.compare_strategies store in
  Alcotest.(check bool) "versioned acyclic" true c.Core.Versioning.versioned_acyclic;
  Alcotest.(check bool) "projection smaller in nodes" true
    (c.Core.Versioning.projected_nodes < c.Core.Versioning.versioned_nodes);
  Alcotest.(check bool) "projection smaller on disk" true
    (c.Core.Versioning.projected_bytes < c.Core.Versioning.versioned_bytes);
  (* Revisit loops make the page projection cyclic in any realistic
     browsing trace — exactly the S3.1 problem. *)
  Alcotest.(check bool) "projection cyclic" false c.Core.Versioning.projected_acyclic

let test_page_projection_mapping () =
  let web, engine, api = F.make () in
  let store = Core.Api.store api in
  let tab = Browser.Engine.open_tab engine ~time:10 () in
  let v1 = Browser.Engine.visit_typed engine ~time:20 ~tab (F.article web) in
  let v2 = Browser.Engine.visit_link engine ~time:30 ~tab (F.hub web) in
  let pg = Core.Versioning.page_projection store in
  let n1 = Option.get (Store.visit_node store v1.Browser.Engine.visit_id) in
  let n2 = Option.get (Store.visit_node store v2.Browser.Engine.visit_id) in
  let p1 = Option.get (pg.Core.Versioning.page_of_store_node n1) in
  let p2 = Option.get (pg.Core.Versioning.page_of_store_node n2) in
  Alcotest.(check bool) "projected edge exists" true
    (List.mem p2 (Digraph.succ pg.Core.Versioning.graph p1));
  (* A page maps to itself. *)
  Alcotest.(check (option int)) "page maps to itself" (Some p1)
    (pg.Core.Versioning.page_of_store_node p1)

let test_causal_projection_strips_time_edges () =
  let _web, _engine, api, _trace = F.simulated ~days:1 () in
  let store = Core.Api.store api in
  let causal = Core.Versioning.causal_projection store in
  let found = ref false in
  Digraph.iter_edges causal (fun _ _ (e : PE.t) ->
      if e.PE.kind = PE.Same_time then found := true);
  Alcotest.(check bool) "no same-time edges" false !found;
  Alcotest.(check int) "nodes preserved" (Store.node_count store) (Digraph.node_count causal)

(* --- derived time edges --- *)

let test_derive_same_time_counts () =
  let _web, _engine, api, _trace = F.simulated ~days:1 () in
  let store = Core.Api.store api in
  let live_count =
    List.fold_left
      (fun acc (_, _, k, _) -> if k = PE.kind_code PE.Same_time then acc + 1 else acc)
      0 (edge_multiset store)
  in
  (* Round-trip through the schema and compare the re-derived count:
     the sweep applies the same fanout-capped rule the capture used. *)
  let store' = PS.of_database (PS.to_database store) in
  let derived_count =
    List.fold_left
      (fun acc (_, _, k, _) -> if k = PE.kind_code PE.Same_time then acc + 1 else acc)
      0 (edge_multiset store')
  in
  Alcotest.(check bool) "derived count in the same ballpark" true
    (live_count = 0 || abs (derived_count - live_count) * 100 / max 1 live_count <= 25)

let test_queries_survive_roundtrip () =
  (* End to end: persist, reload, and ask the same questions — answers
     must be identical (modulo node ids, so compare URLs). *)
  let _web, _engine, api, trace = F.simulated ~days:1 ~seed:19 () in
  let store = Core.Api.store api in
  let store' = PS.of_database (PS.to_database store) in
  let index = Core.Api.text_index api in
  let index' = Core.Prov_text_index.build store' in
  let urls st resp =
    List.map
      (fun (r : Core.Contextual_search.result) ->
        match (Store.node st r.Core.Contextual_search.page).PN.kind with
        | PN.Page { url; _ } -> url
        | _ -> "?")
      resp.Core.Contextual_search.results
  in
  let queries =
    List.filteri (fun i _ -> i < 5)
      (List.map (fun (e : Browser.User_model.search_episode) -> e.Browser.User_model.query)
         trace.Browser.User_model.searches)
  in
  List.iter
    (fun q ->
      Alcotest.(check (list string)) ("same answers for " ^ q)
        (urls store (Core.Contextual_search.search index q))
        (urls store' (Core.Contextual_search.search index' q)))
    queries

let test_rebuild_time_index_matches () =
  let _web, _engine, api, _trace = F.simulated ~days:1 () in
  let store = Core.Api.store api in
  let live = Core.Api.time_index api in
  let rebuilt = Core.Time_edges.rebuild_time_index store in
  Alcotest.(check int) "same interval count" (Core.Time_index.size live)
    (Core.Time_index.size rebuilt)

let suite =
  [
    Alcotest.test_case "roundtrip preserves graph" `Quick test_roundtrip_preserves_graph;
    Alcotest.test_case "roundtrip via bytes" `Quick test_roundtrip_via_bytes;
    Alcotest.test_case "visit rows normalized" `Quick test_visit_rows_are_normalized;
    Alcotest.test_case "same-time not persisted" `Quick test_no_same_time_rows_persisted;
    Alcotest.test_case "form fields attr table" `Quick test_form_fields_in_attr_table;
    Alcotest.test_case "versioning comparison" `Quick test_versioned_store_acyclic_projection_not;
    Alcotest.test_case "page projection mapping" `Quick test_page_projection_mapping;
    Alcotest.test_case "causal projection" `Quick test_causal_projection_strips_time_edges;
    Alcotest.test_case "derived time edges" `Quick test_derive_same_time_counts;
    Alcotest.test_case "queries survive roundtrip" `Quick test_queries_survive_roundtrip;
    Alcotest.test_case "rebuilt time index" `Quick test_rebuild_time_index_matches;
  ]
