(* The S3.3 heterogeneous-join queries over the Places baseline. *)

module F = Core_fixtures
module Engine = Browser.Engine
module PQ = Browser.Places_queries

let scripted () =
  let web, engine, _api = F.make ~seed:41 () in
  let tab = Engine.open_tab engine ~time:10 () in
  (* search -> click -> bookmark: the bookmark is search-reachable. *)
  let _serp, results = Engine.search engine ~time:20 ~tab "wine" in
  let clicked =
    match results with r :: _ -> r.Webmodel.Search_engine.page | [] -> failwith "no results"
  in
  let _ = Engine.click_result engine ~time:30 ~tab clicked in
  let _b1 = Engine.add_bookmark engine ~time:40 ~tab in
  (* typed -> bookmark: this one is NOT search-reachable. *)
  let _ = Engine.visit_typed engine ~time:50 ~tab (F.hub web) in
  let _b2 = Engine.add_bookmark engine ~time:60 ~tab in
  (* a download from a host reached by link *)
  let host = F.first_of_kind web Webmodel.Page_content.Download_host in
  let _ = Engine.visit_link engine ~time:70 ~tab host in
  let file = F.file_of_host web host in
  let _ = Engine.download engine ~time:80 ~tab ~file_page:file in
  Engine.close_tab engine ~time:90 tab;
  (web, engine)

let test_bookmarks_reached_from_search () =
  let _web, engine = scripted () in
  let results = PQ.bookmarks_reached_from_search (Engine.places engine) in
  Alcotest.(check int) "two bookmarks" 2 (List.length results);
  let found =
    List.filter (fun (b : PQ.bookmark_origin) -> b.PQ.reached_from_search <> None) results
  in
  (* Only the search->click->bookmark one can be traced; the typed one
     dead-ends (Places drops the relationship). *)
  (match found with
  | [ b ] -> Alcotest.(check (option string)) "query recovered" (Some "wine") b.PQ.reached_from_search
  | other -> Alcotest.failf "expected exactly one traceable bookmark, got %d" (List.length other))

let test_downloads_with_referrers () =
  let _web, engine = scripted () in
  match PQ.downloads_with_referrers (Engine.places engine) with
  | [ d ] ->
    Alcotest.(check bool) "referrer is the host page" true
      (match d.PQ.referrer_url with
      | Some url -> Provkit_util.Strutil.contains_substring ~needle:"downloads" url
      | None -> false);
    Alcotest.(check bool) "target recorded" true
      (Provkit_util.Strutil.is_prefix ~prefix:"/home/user/downloads/" d.PQ.download_target)
  | other -> Alcotest.failf "expected one download, got %d" (List.length other)

let test_top_referrers () =
  let _web, engine = scripted () in
  let tops = PQ.top_referrers ~limit:3 (Engine.places engine) in
  Alcotest.(check bool) "some referrers" true (tops <> []);
  List.iter (fun (_, n) -> Alcotest.(check bool) "positive counts" true (n > 0)) tops;
  (* Descending. *)
  let counts = List.map snd tops in
  Alcotest.(check bool) "sorted" true (List.sort (fun a b -> Int.compare b a) counts = counts)

let test_dead_end_rate () =
  let _web, engine = scripted () in
  let rate = PQ.dead_end_rate (Engine.places engine) in
  (* The SERP (typed), the typed hub visit and the bookmark navigation
     are dead ends; link clicks are not. *)
  Alcotest.(check bool) "strictly between 0 and 1" true (rate > 0.0 && rate < 1.0)

let test_empty_places () =
  let web = Webmodel.Web_graph.generate ~config:F.small_web_config ~seed:1 () in
  let se = Webmodel.Search_engine.build web in
  let engine = Engine.create ~web ~search:se () in
  let places = Engine.places engine in
  Alcotest.(check (list unit)) "no bookmarks" []
    (List.map (fun _ -> ()) (PQ.bookmarks_reached_from_search places));
  Alcotest.(check (list unit)) "no downloads" []
    (List.map (fun _ -> ()) (PQ.downloads_with_referrers places));
  Alcotest.(check (float 1e-9)) "dead-end rate of nothing" 0.0 (PQ.dead_end_rate places)

let suite =
  [
    Alcotest.test_case "bookmarks from search" `Quick test_bookmarks_reached_from_search;
    Alcotest.test_case "downloads with referrers" `Quick test_downloads_with_referrers;
    Alcotest.test_case "top referrers" `Quick test_top_referrers;
    Alcotest.test_case "dead-end rate" `Quick test_dead_end_rate;
    Alcotest.test_case "empty places" `Quick test_empty_places;
  ]
