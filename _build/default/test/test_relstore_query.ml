(* Predicates, query execution, planning and the database container. *)

module R = Relstore

let schema () =
  R.Schema.make ~name:"items"
    [
      R.Column.make "name" R.Value.Ttext;
      R.Column.make "qty" R.Value.Tint;
      R.Column.make ~nullable:true "note" R.Value.Ttext;
    ]

let item ?note name qty =
  [
    ("name", R.Value.Text name);
    ("qty", R.Value.Int qty);
    ("note", match note with None -> R.Value.Null | Some s -> R.Value.Text s);
  ]

let sample_table ?(indexed = true) () =
  let t = R.Table.create (schema ()) in
  if indexed then begin
    R.Table.add_index t ~name:"by_qty" ~columns:[ "qty" ];
    R.Table.add_index t ~name:"by_name" ~columns:[ "name" ]
  end;
  List.iter
    (fun (n, q, note) -> ignore (R.Table.insert_fields t (item ?note n q)))
    [
      ("apple", 5, Some "fresh Fruit");
      ("banana", 3, None);
      ("cherry", 9, Some "tart fruit");
      ("date", 5, None);
      ("elderberry", 1, Some "rare");
    ];
  t

(* --- predicate evaluation --- *)

let eval t p rowid = R.Predicate.eval p (R.Table.schema t) (R.Table.get t rowid)

let test_predicates () =
  let t = sample_table () in
  let b = Alcotest.(check bool) in
  b "true" true (eval t R.Predicate.True 1);
  b "eq yes" true (eval t (R.Predicate.Eq ("name", R.Value.Text "apple")) 1);
  b "eq no" false (eval t (R.Predicate.Eq ("name", R.Value.Text "apple")) 2);
  b "lt" true (eval t (R.Predicate.Cmp (R.Predicate.Lt, "qty", R.Value.Int 4)) 2);
  b "ge" true (eval t (R.Predicate.Cmp (R.Predicate.Ge, "qty", R.Value.Int 9)) 3);
  b "ne" true (eval t (R.Predicate.Cmp (R.Predicate.Ne, "qty", R.Value.Int 4)) 1);
  b "between" true (eval t (R.Predicate.Between ("qty", R.Value.Int 3, R.Value.Int 5)) 2);
  b "between excl" false (eval t (R.Predicate.Between ("qty", R.Value.Int 6, R.Value.Int 8)) 3);
  b "is_null" true (eval t (R.Predicate.Is_null "note") 2);
  b "not_null" true (eval t (R.Predicate.Not_null "note") 1);
  b "like case-insensitive" true (eval t (R.Predicate.Like ("note", "fruit")) 1);
  b "like no match" false (eval t (R.Predicate.Like ("note", "vegetable")) 1);
  b "like on null" false (eval t (R.Predicate.Like ("note", "fruit")) 2);
  b "and" true
    (eval t
       (R.Predicate.And
          [ R.Predicate.Eq ("qty", R.Value.Int 5); R.Predicate.Not_null "note" ])
       1);
  b "or" true
    (eval t
       (R.Predicate.Or
          [ R.Predicate.Eq ("qty", R.Value.Int 99); R.Predicate.Eq ("name", R.Value.Text "date") ])
       4);
  b "not" true (eval t (R.Predicate.Not (R.Predicate.Is_null "note")) 1);
  b "custom" true
    (eval t
       (R.Predicate.Custom ("qty even?", fun s row -> R.Row.int s row "qty" mod 2 = 1))
       1)

let test_null_comparisons_never_match () =
  let t = sample_table () in
  Alcotest.(check bool) "cmp on null is false" false
    (eval t (R.Predicate.Cmp (R.Predicate.Lt, "note", R.Value.Text "z")) 2);
  Alcotest.(check bool) "between on null is false" false
    (eval t (R.Predicate.Between ("note", R.Value.Text "a", R.Value.Text "z")) 2)

(* --- planning --- *)

let test_plans () =
  let t = sample_table () in
  let plan p = R.Query_exec.plan_for t p in
  Alcotest.(check bool) "eq uses index" true
    (plan (R.Predicate.Eq ("qty", R.Value.Int 5)) = R.Query_exec.Index_eq "by_qty");
  Alcotest.(check bool) "between uses range index" true
    (plan (R.Predicate.Between ("qty", R.Value.Int 1, R.Value.Int 3))
    = R.Query_exec.Index_range "by_qty");
  Alcotest.(check bool) "unindexable scans" true
    (plan (R.Predicate.Like ("note", "x")) = R.Query_exec.Full_scan);
  let bare = sample_table ~indexed:false () in
  Alcotest.(check bool) "no index -> scan" true
    (R.Query_exec.plan_for bare (R.Predicate.Eq ("qty", R.Value.Int 5)) = R.Query_exec.Full_scan)

let names rows =
  List.map (fun (_, row) -> R.Value.to_text row.(0)) rows

(* --- select: indexed and scan paths agree --- *)

let test_select_index_vs_scan_agree () =
  let indexed = sample_table () in
  let bare = sample_table ~indexed:false () in
  let predicates =
    [
      R.Predicate.Eq ("qty", R.Value.Int 5);
      R.Predicate.Between ("qty", R.Value.Int 2, R.Value.Int 6);
      R.Predicate.And
        [ R.Predicate.Eq ("qty", R.Value.Int 5); R.Predicate.Not_null "note" ];
      R.Predicate.True;
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check (list string))
        (Format.asprintf "agree on %a" R.Predicate.pp p)
        (names (R.Query_exec.select ~where:p bare))
        (names (R.Query_exec.select ~where:p indexed)))
    predicates

let test_select_order_limit () =
  let t = sample_table () in
  let by_qty_desc =
    R.Query_exec.select ~order_by:[ R.Query_exec.Desc "qty" ] ~limit:2 t
  in
  Alcotest.(check (list string)) "top 2 by qty" [ "cherry"; "apple" ] (names by_qty_desc);
  let by_qty_then_name =
    R.Query_exec.select ~order_by:[ R.Query_exec.Asc "qty"; R.Query_exec.Asc "name" ] t
  in
  Alcotest.(check (list string)) "tie broken by name"
    [ "elderberry"; "banana"; "apple"; "date"; "cherry" ]
    (names by_qty_then_name)

let test_count () =
  let t = sample_table () in
  Alcotest.(check int) "count all" 5 (R.Query_exec.count t);
  Alcotest.(check int) "count filtered" 2
    (R.Query_exec.count ~where:(R.Predicate.Eq ("qty", R.Value.Int 5)) t)

let test_group_count () =
  let t = sample_table () in
  match R.Query_exec.group_count ~by:"qty" t with
  | (R.Value.Int 5, 2) :: rest ->
    Alcotest.(check int) "remaining groups" 3 (List.length rest)
  | _ -> Alcotest.fail "expected qty=5 group first with count 2"

(* --- join --- *)

let test_join () =
  let orders_schema =
    R.Schema.make ~name:"orders"
      [ R.Column.make "item" R.Value.Ttext; R.Column.make "n" R.Value.Tint ]
  in
  let orders = R.Table.create orders_schema in
  List.iter
    (fun (i, n) ->
      ignore (R.Table.insert_fields orders [ ("item", R.Value.Text i); ("n", R.Value.Int n) ]))
    [ ("apple", 2); ("apple", 1); ("cherry", 7); ("ghost", 1) ];
  let items = sample_table () in
  let pairs = R.Query_exec.join ~on:[ ("item", "name") ] orders items in
  Alcotest.(check int) "three matches" 3 (List.length pairs);
  (* ghost has no matching item *)
  List.iter
    (fun ((_, orow), (_, irow)) ->
      Alcotest.(check string) "join key equal" (R.Value.to_text orow.(0)) (R.Value.to_text irow.(0)))
    pairs;
  (* Same result when the right side has no usable index. *)
  let bare = sample_table ~indexed:false () in
  let pairs' = R.Query_exec.join ~on:[ ("item", "name") ] orders bare in
  Alcotest.(check int) "hash join agrees" 3 (List.length pairs')

let test_join_with_filters () =
  let t = sample_table () in
  let pairs =
    R.Query_exec.join
      ~where_left:(R.Predicate.Eq ("name", R.Value.Text "apple"))
      ~where_right:(R.Predicate.Not_null "note")
      ~on:[ ("qty", "qty") ] t t
  in
  (* apple(qty 5) joins rows with qty 5 and a note: apple only (date has
     no note). *)
  Alcotest.(check int) "filtered join" 1 (List.length pairs)

(* --- database --- *)

let test_database_roundtrip () =
  let db = R.Database.create ~name:"testdb" in
  let t = R.Database.create_table db (schema ()) in
  R.Table.add_index t ~name:"by_qty" ~columns:[ "qty" ];
  let _ = R.Table.insert_fields t (item "apple" 5 ~note:"n") in
  let _ = R.Table.insert_fields t (item "pear" 2) in
  let bytes = R.Database.to_bytes db in
  let db' = R.Database.of_bytes bytes in
  Alcotest.(check string) "name" "testdb" (R.Database.name db');
  let t' = R.Database.table db' "items" in
  Alcotest.(check int) "rows" 2 (R.Table.row_count t');
  Alcotest.(check int) "sizes equal" (R.Database.total_size db) (R.Database.total_size db');
  Alcotest.(check int) "bytes measured exactly"
    (String.length bytes)
    (R.Database.data_size db)

let test_database_save_load_file () =
  let db = R.Database.create ~name:"ondisk" in
  let t = R.Database.create_table db (schema ()) in
  let _ = R.Table.insert_fields t (item "x" 1) in
  let path = Filename.temp_file "relstore_test" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      R.Database.save db ~path;
      let db' = R.Database.load ~path in
      Alcotest.(check int) "rows survive disk" 1
        (R.Table.row_count (R.Database.table db' "items")))

let test_database_errors () =
  let db = R.Database.create ~name:"d" in
  let _ = R.Database.create_table db (schema ()) in
  (try
     ignore (R.Database.table db "missing");
     Alcotest.fail "expected No_such_table"
   with R.Errors.No_such_table _ -> ());
  Alcotest.check_raises "duplicate table"
    (Invalid_argument "Database.create_table: duplicate table items") (fun () ->
      ignore (R.Database.create_table db (schema ())));
  (try
     ignore (R.Database.of_bytes "not a database");
     Alcotest.fail "expected Corrupt"
   with R.Errors.Corrupt _ -> ());
  R.Database.drop_table db "items";
  Alcotest.(check bool) "dropped" true (R.Database.table_opt db "items" = None)

let suite =
  [
    Alcotest.test_case "predicate evaluation" `Quick test_predicates;
    Alcotest.test_case "null comparisons" `Quick test_null_comparisons_never_match;
    Alcotest.test_case "plans" `Quick test_plans;
    Alcotest.test_case "index vs scan agree" `Quick test_select_index_vs_scan_agree;
    Alcotest.test_case "order/limit" `Quick test_select_order_limit;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "group_count" `Quick test_group_count;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "join with filters" `Quick test_join_with_filters;
    Alcotest.test_case "database roundtrip" `Quick test_database_roundtrip;
    Alcotest.test_case "database file save/load" `Quick test_database_save_load_file;
    Alcotest.test_case "database errors" `Quick test_database_errors;
  ]
