(* Tokenizer, stemmer, inverted index, scorers and the search facade. *)

module T = Textindex

let check_sl = Alcotest.(check (list string))

(* --- tokenizer --- *)

let test_tokenize () =
  check_sl "lowercase words" [ "hello"; "world" ] (T.Tokenizer.tokenize "Hello, World!");
  check_sl "digits kept" [ "a1"; "b2" ] (T.Tokenizer.tokenize "a1 b2");
  check_sl "empty" [] (T.Tokenizer.tokenize "  ...  ")

let test_tokenize_url () =
  check_sl "url split"
    [ "http"; "wine"; "example"; "cellar"; "list" ]
    (T.Tokenizer.tokenize_url "http://wine.example/cellar-list")

let test_terms_pipeline () =
  (* stopwords and single chars dropped, stems applied *)
  check_sl "stopwords out" [ "garden" ] (T.Tokenizer.terms "the gardening of a");
  check_sl "unstemmed" [ "gardening" ] (T.Tokenizer.terms ~stem:false "the gardening");
  check_sl "web chrome dropped" [] (T.Tokenizer.terms "www example com index html")

let test_stemmer () =
  let check_stem a b = Alcotest.(check string) a b (T.Stemmer.stem a) in
  check_stem "gardening" "garden";
  check_stem "gardens" "garden";
  check_stem "garden" "garden";
  check_stem "flies" "flie";
  check_stem "agreed" "agree";
  Alcotest.(check string) "short tokens untouched" "bed" (T.Stemmer.stem "bed");
  Alcotest.(check string) "no vowel guard" "dvds" (T.Stemmer.stem "dvds")

let test_stemmer_idempotent_on_common_words () =
  List.iter
    (fun w ->
      let once = T.Stemmer.stem w in
      Alcotest.(check string) ("idempotent: " ^ w) once (T.Stemmer.stem once))
    [ "gardening"; "running"; "searches"; "visited"; "pages"; "rosebud"; "tickets" ]

let test_stopwords () =
  Alcotest.(check bool) "the" true (T.Stopwords.is_stopword "the");
  Alcotest.(check bool) "www" true (T.Stopwords.is_stopword "www");
  Alcotest.(check bool) "wine" false (T.Stopwords.is_stopword "wine");
  Alcotest.(check bool) "list non-empty" true (T.Stopwords.all () <> [])

(* --- inverted index --- *)

let test_inverted_index_basics () =
  let idx = T.Inverted_index.create () in
  T.Inverted_index.add_document idx 1 [ "wine"; "red"; "wine" ];
  T.Inverted_index.add_document idx 2 [ "wine"; "white" ];
  Alcotest.(check int) "docs" 2 (T.Inverted_index.document_count idx);
  Alcotest.(check int) "tf" 2 (T.Inverted_index.term_frequency idx ~term:"wine" ~doc:1);
  Alcotest.(check int) "df" 2 (T.Inverted_index.document_frequency idx "wine");
  Alcotest.(check int) "df rare" 1 (T.Inverted_index.document_frequency idx "red");
  Alcotest.(check int) "df absent" 0 (T.Inverted_index.document_frequency idx "beer");
  Alcotest.(check int) "doc length" 3 (T.Inverted_index.document_length idx 1);
  Alcotest.(check (float 1e-9)) "avg length" 2.5 (T.Inverted_index.average_length idx);
  Alcotest.(check int) "vocab" 3 (T.Inverted_index.vocabulary_size idx);
  Alcotest.(check (list (pair int int))) "postings" [ (1, 2); (2, 1) ]
    (T.Inverted_index.postings idx "wine")

let test_inverted_index_remove () =
  let idx = T.Inverted_index.create () in
  T.Inverted_index.add_document idx 1 [ "a"; "b" ];
  T.Inverted_index.add_document idx 2 [ "a" ];
  T.Inverted_index.remove_document idx 1;
  Alcotest.(check int) "doc gone" 1 (T.Inverted_index.document_count idx);
  Alcotest.(check int) "term pruned" 0 (T.Inverted_index.document_frequency idx "b");
  Alcotest.(check int) "shared term kept" 1 (T.Inverted_index.document_frequency idx "a");
  Alcotest.(check bool) "mem" false (T.Inverted_index.mem idx 1);
  T.Inverted_index.remove_document idx 99 (* no-op, no exception *)

let test_inverted_index_replace () =
  let idx = T.Inverted_index.create () in
  T.Inverted_index.add_document idx 1 [ "old" ];
  T.Inverted_index.add_document idx 1 [ "new" ];
  Alcotest.(check int) "old gone" 0 (T.Inverted_index.document_frequency idx "old");
  Alcotest.(check int) "new present" 1 (T.Inverted_index.document_frequency idx "new");
  Alcotest.(check int) "still one doc" 1 (T.Inverted_index.document_count idx)

(* --- scoring --- *)

let test_idf_ordering () =
  let idx = T.Inverted_index.create () in
  for d = 1 to 10 do
    T.Inverted_index.add_document idx d ([ "common" ] @ (if d = 1 then [ "rare" ] else []))
  done;
  Alcotest.(check bool) "rare term has higher idf" true
    (T.Scorer.idf idx "rare" > T.Scorer.idf idx "common")

let test_scores_ranking () =
  let idx = T.Inverted_index.create () in
  T.Inverted_index.add_document idx 1 [ "wine"; "wine"; "wine" ];
  T.Inverted_index.add_document idx 2 [ "wine"; "cheese"; "bread" ];
  T.Inverted_index.add_document idx 3 [ "beer" ];
  List.iter
    (fun scorer ->
      match T.Scorer.scores scorer idx ~terms:[ "wine" ] with
      | (top, s1) :: (snd_, s2) :: [] ->
        Alcotest.(check int) "most wine-y first" 1 top;
        Alcotest.(check int) "other wine doc second" 2 snd_;
        Alcotest.(check bool) "scores ordered" true (s1 >= s2)
      | other -> Alcotest.failf "expected 2 hits, got %d" (List.length other))
    [ T.Scorer.Tf_idf; T.Scorer.default_bm25 ]

let test_scores_empty_query () =
  let idx = T.Inverted_index.create () in
  T.Inverted_index.add_document idx 1 [ "x" ];
  Alcotest.(check int) "no terms, no hits" 0
    (List.length (T.Scorer.scores T.Scorer.default_bm25 idx ~terms:[]))

let test_multi_term_beats_single () =
  let idx = T.Inverted_index.create () in
  T.Inverted_index.add_document idx 1 [ "red"; "wine" ];
  T.Inverted_index.add_document idx 2 [ "red"; "carpet" ];
  match T.Scorer.scores T.Scorer.default_bm25 idx ~terms:[ "red"; "wine" ] with
  | (top, _) :: _ -> Alcotest.(check int) "both terms wins" 1 top
  | [] -> Alcotest.fail "no hits"

(* --- search facade --- *)

let test_search_facade () =
  let s = T.Search.create () in
  T.Search.index_document s 1 ~text:"Gardening tips for rose bushes";
  T.Search.index_document s 2 ~text:"Citizen Kane film analysis";
  Alcotest.(check int) "docs" 2 (T.Search.document_count s);
  (match T.Search.query s "gardening roses" with
  | { T.Search.doc = 1; _ } :: _ -> ()
  | _ -> Alcotest.fail "gardening doc should win");
  (* Stemming bridges query and document morphology. *)
  (match T.Search.query s "garden" with
  | { T.Search.doc = 1; _ } :: _ -> ()
  | _ -> Alcotest.fail "stemmed match failed");
  T.Search.remove_document s 1;
  Alcotest.(check int) "after removal" 0 (List.length (T.Search.query s "gardening"))

let test_search_limit () =
  let s = T.Search.create () in
  for d = 1 to 20 do
    T.Search.index_document s d ~text:"same text everywhere"
  done;
  Alcotest.(check int) "limit respected" 5 (List.length (T.Search.query ~limit:5 s "text"))

let test_search_deterministic_ties () =
  let s = T.Search.create () in
  for d = 1 to 5 do
    T.Search.index_document s d ~text:"identical words"
  done;
  let docs r = List.map (fun (x : T.Search.result) -> x.T.Search.doc) r in
  Alcotest.(check (list int)) "ties by doc id" [ 1; 2; 3; 4; 5 ]
    (docs (T.Search.query s "identical"))

let suite =
  [
    Alcotest.test_case "tokenize" `Quick test_tokenize;
    Alcotest.test_case "tokenize url" `Quick test_tokenize_url;
    Alcotest.test_case "terms pipeline" `Quick test_terms_pipeline;
    Alcotest.test_case "stemmer" `Quick test_stemmer;
    Alcotest.test_case "stemmer idempotent" `Quick test_stemmer_idempotent_on_common_words;
    Alcotest.test_case "stopwords" `Quick test_stopwords;
    Alcotest.test_case "inverted index basics" `Quick test_inverted_index_basics;
    Alcotest.test_case "inverted index remove" `Quick test_inverted_index_remove;
    Alcotest.test_case "inverted index replace" `Quick test_inverted_index_replace;
    Alcotest.test_case "idf ordering" `Quick test_idf_ordering;
    Alcotest.test_case "scores ranking" `Quick test_scores_ranking;
    Alcotest.test_case "empty query" `Quick test_scores_empty_query;
    Alcotest.test_case "multi-term ranking" `Quick test_multi_term_beats_single;
    Alcotest.test_case "search facade" `Quick test_search_facade;
    Alcotest.test_case "search limit" `Quick test_search_limit;
    Alcotest.test_case "deterministic ties" `Quick test_search_deterministic_ties;
  ]
