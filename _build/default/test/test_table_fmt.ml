module T = Provkit_util.Table_fmt

let test_alignment_and_rule () =
  let out = T.render ~header:[ "name"; "n" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  match lines with
  | header :: rule :: row1 :: row2 :: _ ->
    Alcotest.(check int) "uniform width" (String.length header) (String.length rule);
    Alcotest.(check int) "rows padded" (String.length header) (String.length row1);
    Alcotest.(check int) "rows padded 2" (String.length header) (String.length row2);
    Alcotest.(check bool) "rule made of dashes" true
      (String.for_all (fun c -> c = '-' || c = ' ') rule)
  | _ -> Alcotest.fail "missing lines"

let test_right_align () =
  let out =
    T.render ~aligns:[ T.Left; T.Right ] ~header:[ "k"; "value" ] [ [ "x"; "9" ] ]
  in
  let lines = String.split_on_char '\n' out in
  let row = List.nth lines 2 in
  Alcotest.(check bool) "value right-aligned" true
    (Provkit_util.Strutil.is_suffix ~suffix:"9" row)

let test_ragged_rejected () =
  Alcotest.check_raises "ragged row" (Invalid_argument "Table_fmt.render: ragged row")
    (fun () -> ignore (T.render ~header:[ "a"; "b" ] [ [ "only-one" ] ]))

let test_aligns_arity_rejected () =
  Alcotest.check_raises "aligns arity"
    (Invalid_argument "Table_fmt.render: aligns arity mismatch") (fun () ->
      ignore (T.render ~aligns:[ T.Left ] ~header:[ "a"; "b" ] []))

let test_empty_rows () =
  let out = T.render ~header:[ "a" ] [] in
  Alcotest.(check int) "header + rule only" 2
    (List.length (List.filter (fun s -> s <> "") (String.split_on_char '\n' out)))

let suite =
  [
    Alcotest.test_case "alignment and rule" `Quick test_alignment_and_rule;
    Alcotest.test_case "right align" `Quick test_right_align;
    Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
    Alcotest.test_case "aligns arity rejected" `Quick test_aligns_arity_rejected;
    Alcotest.test_case "empty rows" `Quick test_empty_rows;
  ]
