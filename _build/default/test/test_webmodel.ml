(* URLs, topics, the synthetic web generator and the simulated search
   engine. *)

module Url = Webmodel.Url
module Topic = Webmodel.Topic
module Web = Webmodel.Web_graph
module Page = Webmodel.Page_content
module SE = Webmodel.Search_engine
module Prng = Provkit_util.Prng

(* --- urls --- *)

let test_url_roundtrip () =
  let cases =
    [
      "http://example.com";
      "http://example.com/a/b";
      "https://a.b.c/x?k=v";
      "http://site0.wine.example/articles/a3?id=7&x=1";
    ]
  in
  List.iter
    (fun s -> Alcotest.(check string) s s (Url.to_string (Url.of_string s)))
    cases

let test_url_parse_parts () =
  let u = Url.of_string "https://host.example/a/b?x=1&y=2" in
  Alcotest.(check string) "scheme" "https" u.Url.scheme;
  Alcotest.(check string) "host" "host.example" u.Url.host;
  Alcotest.(check (list string)) "path" [ "a"; "b" ] u.Url.path;
  Alcotest.(check (list (pair string string))) "query" [ ("x", "1"); ("y", "2") ] u.Url.query

let test_url_lenient () =
  let u = Url.of_string "bare.host/path" in
  Alcotest.(check string) "default scheme" "http" u.Url.scheme;
  Alcotest.(check string) "host" "bare.host" u.Url.host

let test_url_normalize_equal () =
  let a = Url.of_string "HTTP://Example.COM/a?b=2&a=1" in
  let b = Url.of_string "http://example.com/a?a=1&b=2" in
  Alcotest.(check bool) "normalized equal" true (Url.equal a b)

let test_url_domain () =
  Alcotest.(check string) "domain" "wine.example"
    (Url.domain_of (Url.of_string "http://site3.wine.example/x"));
  Alcotest.(check string) "short host" "localhost"
    (Url.domain_of (Url.of_string "http://localhost/x"))

let test_url_empty_host_rejected () =
  Alcotest.(check bool) "rejects empty host" true
    (try
       ignore (Url.of_string "http:///nohost");
       false
     with Invalid_argument _ -> true)

(* --- topics --- *)

let test_topic_vocabulary () =
  let rng = Prng.create 1 in
  let t = Topic.generate ~rng ~id:0 ~name:"wine" ~vocab_size:50 in
  Alcotest.(check int) "size" 50 (Array.length (Topic.vocabulary t));
  Alcotest.(check string) "name leads vocab" "wine" (Topic.core_term t 0);
  Alcotest.(check bool) "mem" true (Topic.mem_term t "wine");
  let distinct = List.sort_uniq String.compare (Array.to_list (Topic.vocabulary t)) in
  Alcotest.(check int) "all distinct" 50 (List.length distinct)

let test_topic_sampling () =
  let rng = Prng.create 2 in
  let t = Topic.generate ~rng ~id:0 ~name:"film" ~vocab_size:20 in
  let counts = Hashtbl.create 20 in
  for _ = 1 to 5000 do
    let w = Topic.sample_term t rng in
    Alcotest.(check bool) "sampled from vocab" true (Topic.mem_term t w);
    Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
  done;
  let name_count = Option.value ~default:0 (Hashtbl.find_opt counts "film") in
  Alcotest.(check bool) "rank-0 term most frequent" true
    (Hashtbl.fold (fun _ c best -> max c best) counts 0 = name_count)

let test_topic_add_term () =
  let rng = Prng.create 3 in
  let t = Topic.generate ~rng ~id:0 ~name:"x" ~vocab_size:5 in
  Topic.add_term t "rosebud";
  Alcotest.(check bool) "added" true (Topic.mem_term t "rosebud");
  Alcotest.(check int) "grown" 6 (Array.length (Topic.vocabulary t))

(* --- web graph --- *)

let small_web () =
  Web.generate
    ~config:
      {
        Web.default_config with
        Web.n_topics = 4;
        sites_per_topic = 3;
        articles_per_site = 5;
        ambiguous_terms = 2;
      }
    ~seed:99 ()

let test_web_structure () =
  let web = small_web () in
  Alcotest.(check int) "topics" 4 (Web.topic_count web);
  Alcotest.(check bool) "pages exist" true (Web.page_count web > 0);
  (* Every link and embed target is a valid page id. *)
  Array.iter
    (fun (p : Page.t) ->
      Array.iter
        (fun l ->
          if l < 0 || l >= Web.page_count web then Alcotest.failf "bad link %d" l)
        p.Page.links;
      Array.iter
        (fun e ->
          Alcotest.(check bool) "embed is an image" true
            ((Web.page web e).Page.kind = Page.Image))
        p.Page.embeds)
    (Web.pages web)

let test_web_urls_unique_and_resolvable () =
  let web = small_web () in
  Array.iter
    (fun (p : Page.t) ->
      match Web.find_by_url web p.Page.url with
      | Some id -> Alcotest.(check int) "url resolves to page" p.Page.id id
      | None -> Alcotest.failf "url not resolvable: %s" (Url.to_string p.Page.url))
    (Web.pages web)

let test_web_redirects () =
  let web = small_web () in
  Array.iter
    (fun (p : Page.t) ->
      match p.Page.kind with
      | Page.Redirect -> begin
        Alcotest.(check bool) "redirect has target" true (p.Page.redirect_to <> None);
        match Web.resolve_redirects web p.Page.id with
        | [] -> Alcotest.fail "empty chain"
        | chain ->
          let final = List.nth chain (List.length chain - 1) in
          Alcotest.(check bool) "chain ends at content" true
            ((Web.page web final).Page.kind <> Page.Redirect)
      end
      | _ ->
        Alcotest.(check (list int)) "non-redirect chain is itself" [ p.Page.id ]
          (Web.resolve_redirects web p.Page.id))
    (Web.pages web)

let test_web_topic_partitions () =
  let web = small_web () in
  for ti = 0 to Web.topic_count web - 1 do
    List.iter
      (fun pid ->
        let p = Web.page web pid in
        Alcotest.(check int) "topic matches" ti p.Page.topic;
        Alcotest.(check bool) "navigable kinds" true (Page.is_navigable p))
      (Web.pages_of_topic web ti);
    List.iter
      (fun fid ->
        Alcotest.(check bool) "file kind" true ((Web.page web fid).Page.kind = Page.File))
      (Web.files_of_topic web ti)
  done

let test_web_download_hosts_link_files () =
  let web = small_web () in
  List.iter
    (fun hid ->
      let host = Web.page web hid in
      Alcotest.(check bool) "host kind" true (host.Page.kind = Page.Download_host);
      Alcotest.(check bool) "links files" true
        (Array.exists (fun l -> (Web.page web l).Page.kind = Page.File) host.Page.links))
    (Web.download_hosts web)

let test_web_ambiguities () =
  let web = small_web () in
  let ambiguities = Web.ambiguities web in
  Alcotest.(check int) "planted count" 2 (List.length ambiguities);
  List.iter
    (fun (a : Web.ambiguity) ->
      Alcotest.(check bool) "distinct topics" true (a.Web.topic_a <> a.Web.topic_b);
      List.iter
        (fun (pages, topic) ->
          Alcotest.(check bool) "pages planted" true (pages <> []);
          List.iter
            (fun pid ->
              let p = Web.page web pid in
              Alcotest.(check int) "planted in right topic" topic p.Page.topic;
              Alcotest.(check bool) "term in title" true
                (Provkit_util.Strutil.contains_substring ~needle:a.Web.term p.Page.title))
            pages)
        [ (a.Web.pages_a, a.Web.topic_a); (a.Web.pages_b, a.Web.topic_b) ])
    ambiguities;
  match ambiguities with
  | first :: _ -> Alcotest.(check string) "rosebud first" "rosebud" first.Web.term
  | [] -> ()

let test_web_determinism () =
  let w1 = small_web () and w2 = small_web () in
  Alcotest.(check int) "same page count" (Web.page_count w1) (Web.page_count w2);
  Array.iter2
    (fun (a : Page.t) (b : Page.t) ->
      Alcotest.(check string) "same titles" a.Page.title b.Page.title)
    (Web.pages w1) (Web.pages w2)

(* --- search engine --- *)

let test_search_engine_finds_planted () =
  let web = small_web () in
  let se = SE.build web in
  let results = SE.search ~limit:10 se "rosebud" in
  Alcotest.(check bool) "rosebud searchable" true (results <> []);
  let planted =
    match Web.ambiguities web with a :: _ -> a.Web.pages_a @ a.Web.pages_b | [] -> []
  in
  Alcotest.(check bool) "top result is planted" true
    (match results with r :: _ -> List.mem r.SE.page planted | [] -> false)

let test_search_engine_excludes_hidden_kinds () =
  let web = small_web () in
  let se = SE.build web in
  (* Query every page's exact title; redirects/images must never appear. *)
  let results = SE.search ~limit:50 se "image" in
  List.iter
    (fun r ->
      let k = (Web.page web r.SE.page).Page.kind in
      Alcotest.(check bool) "not redirect/image" true (k <> Page.Redirect && k <> Page.Image))
    results

let test_serp_url_roundtrip () =
  let u = SE.serp_url "plane tickets cheap" in
  Alcotest.(check (option string)) "query recovered" (Some "plane tickets cheap")
    (SE.query_of_serp u);
  Alcotest.(check (option string)) "non-serp" None
    (SE.query_of_serp (Url.of_string "http://example.com/search"))

let test_rank_of () =
  let web = small_web () in
  let se = SE.build web in
  match SE.search ~limit:3 se "rosebud" with
  | top :: _ ->
    Alcotest.(check (option int)) "rank of top" (Some 1) (SE.rank_of se "rosebud" top.SE.page);
    Alcotest.(check (option int)) "rank of absent" None (SE.rank_of ~limit:5 se "rosebud" (-1))
  | [] -> Alcotest.fail "no results"

let suite =
  [
    Alcotest.test_case "url roundtrip" `Quick test_url_roundtrip;
    Alcotest.test_case "url parts" `Quick test_url_parse_parts;
    Alcotest.test_case "url lenient" `Quick test_url_lenient;
    Alcotest.test_case "url normalize" `Quick test_url_normalize_equal;
    Alcotest.test_case "url domain" `Quick test_url_domain;
    Alcotest.test_case "url empty host" `Quick test_url_empty_host_rejected;
    Alcotest.test_case "topic vocabulary" `Quick test_topic_vocabulary;
    Alcotest.test_case "topic sampling" `Quick test_topic_sampling;
    Alcotest.test_case "topic add_term" `Quick test_topic_add_term;
    Alcotest.test_case "web structure" `Quick test_web_structure;
    Alcotest.test_case "web urls unique" `Quick test_web_urls_unique_and_resolvable;
    Alcotest.test_case "web redirects" `Quick test_web_redirects;
    Alcotest.test_case "web topic partitions" `Quick test_web_topic_partitions;
    Alcotest.test_case "download hosts" `Quick test_web_download_hosts_link_files;
    Alcotest.test_case "ambiguities" `Quick test_web_ambiguities;
    Alcotest.test_case "web determinism" `Quick test_web_determinism;
    Alcotest.test_case "search finds planted" `Quick test_search_engine_finds_planted;
    Alcotest.test_case "search excludes hidden kinds" `Quick test_search_engine_excludes_hidden_kinds;
    Alcotest.test_case "serp url roundtrip" `Quick test_serp_url_roundtrip;
    Alcotest.test_case "rank_of" `Quick test_rank_of;
  ]
