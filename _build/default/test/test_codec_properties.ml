(* Property sweep over the binary codecs: ~10k randomized cases per
   property, driven by Test_seed (override with PROV_TEST_SEED), for
   varints, strings, values, rows and checksummed frames.  Each property
   is decode-after-encode identity plus exact size accounting. *)

module V = Relstore.Varint
module C = Relstore.Codec
module Value = Relstore.Value
module Prng = Provkit_util.Prng

let cases = 10_000

(* Magnitude-stratified non-negative int: small counts are as important
   to cover as 63-bit extremes. *)
let gen_unsigned rng =
  match Prng.int rng 6 with
  | 0 -> Prng.int rng 2
  | 1 -> Prng.int rng 128 (* one byte *)
  | 2 -> 128 + Prng.int rng 16256 (* two bytes *)
  | 3 -> Prng.int rng 1_000_000
  | 4 -> max_int - Prng.int rng 1000
  | _ -> Int64.to_int (Int64.shift_right_logical (Prng.bits64 rng) 1)

let gen_signed rng =
  let m = gen_unsigned rng in
  match Prng.int rng 3 with
  | 0 -> m
  | 1 -> -m
  | _ -> if Prng.bool rng then min_int + Prng.int rng 1000 else Prng.int rng 100 - 50

let gen_string rng =
  let len =
    match Prng.int rng 4 with 0 -> 0 | 1 -> Prng.int rng 8 | _ -> Prng.int rng 120
  in
  String.init len (fun _ -> Char.chr (Prng.int rng 256))

(* Finite floats only: NaN would break structural equality, and the
   codec stores IEEE bits verbatim anyway. *)
let gen_float rng =
  match Prng.int rng 4 with
  | 0 -> float_of_int (gen_signed rng)
  | 1 -> Prng.float rng 1.0
  | 2 -> Prng.gaussian rng ~mean:0.0 ~stddev:1e9
  | _ -> if Prng.bool rng then infinity else neg_infinity

let gen_value rng =
  match Prng.int rng 6 with
  | 0 -> Value.Null
  | 1 -> Value.Int (gen_signed rng)
  | 2 -> Value.Real (gen_float rng)
  | 3 -> Value.Text (gen_string rng)
  | 4 -> Value.Blob (Bytes.of_string (gen_string rng))
  | _ -> Value.Bool (Prng.bool rng)

let gen_row rng = Array.init (Prng.int rng 9) (fun _ -> gen_value rng)

let buf = Buffer.create 256

let encode_with writer x =
  Buffer.clear buf;
  writer buf x;
  Buffer.contents buf

let test_varint_unsigned () =
  let rng = Test_seed.prng ~salt:20 in
  for _ = 1 to cases do
    let n = gen_unsigned rng in
    let s = encode_with V.write_unsigned n in
    Alcotest.(check int) "size_unsigned is exact" (String.length s) (V.size_unsigned n);
    let pos = ref 0 in
    Alcotest.(check int) "unsigned round trip" n (V.read_unsigned s pos);
    Alcotest.(check int) "fully consumed" (String.length s) !pos
  done

let test_varint_signed () =
  let rng = Test_seed.prng ~salt:21 in
  List.iter
    (fun n ->
      let s = encode_with V.write_signed n in
      Alcotest.(check int) "edge signed round trip" n (V.read_signed s (ref 0)))
    [ min_int; max_int; 0; -1; 1; min_int + 1; max_int - 1 ];
  for _ = 1 to cases do
    let n = gen_signed rng in
    let s = encode_with V.write_signed n in
    Alcotest.(check int) "size_signed is exact" (String.length s) (V.size_signed n);
    Alcotest.(check int) "signed round trip" n (V.read_signed s (ref 0));
    Alcotest.(check int) "zigzag inverse" n (V.unzigzag (V.zigzag n))
  done

let test_string_roundtrip () =
  let rng = Test_seed.prng ~salt:22 in
  for _ = 1 to cases do
    let s = gen_string rng in
    let enc = encode_with C.write_string s in
    let pos = ref 0 in
    Alcotest.(check string) "string round trip" s (C.read_string enc pos);
    Alcotest.(check int) "fully consumed" (String.length enc) !pos
  done

let test_value_roundtrip () =
  let rng = Test_seed.prng ~salt:23 in
  for _ = 1 to cases do
    let v = gen_value rng in
    let enc = encode_with C.write_value v in
    let pos = ref 0 in
    let v' = C.read_value enc pos in
    if not (v = v') then
      Alcotest.failf "value did not round trip: %s" (Format.asprintf "%a" Value.pp v);
    Alcotest.(check int) "fully consumed" (String.length enc) !pos
  done

let test_row_roundtrip_and_size () =
  let rng = Test_seed.prng ~salt:24 in
  for _ = 1 to cases do
    let row = gen_row rng in
    let enc = encode_with C.write_row row in
    Alcotest.(check int) "row_size is exact" (String.length enc) (C.row_size row);
    let pos = ref 0 in
    let row' = C.read_row enc pos in
    if not (row = row') then Alcotest.failf "row of arity %d did not round trip" (Array.length row);
    Alcotest.(check int) "fully consumed" (String.length enc) !pos
  done

let test_frame_roundtrip_and_size () =
  let rng = Test_seed.prng ~salt:25 in
  for _ = 1 to cases do
    let payload = gen_string rng in
    let enc = encode_with C.write_frame payload in
    Alcotest.(check int) "frame_size is exact" (String.length enc)
      (C.frame_size (String.length payload));
    let pos = ref 0 in
    Alcotest.(check string) "frame round trip" payload (C.read_frame enc pos);
    Alcotest.(check int) "fully consumed" (String.length enc) !pos
  done

let test_frames_concatenate () =
  (* Back-to-back frames on one wire: each read lands exactly on the
     next frame boundary. *)
  let rng = Test_seed.prng ~salt:26 in
  for _ = 1 to 500 do
    let payloads = List.init (1 + Prng.int rng 8) (fun _ -> gen_string rng) in
    Buffer.clear buf;
    List.iter (C.write_frame buf) payloads;
    let wire = Buffer.contents buf in
    let pos = ref 0 in
    List.iter
      (fun expected -> Alcotest.(check string) "stream element" expected (C.read_frame wire pos))
      payloads;
    Alcotest.(check int) "stream fully consumed" (String.length wire) !pos
  done

let test_overlong_varint_rejected () =
  (* 10 continuation bytes would decode to a phantom value; the reader
     must bound the shift instead. *)
  let overlong = String.make 10 '\xff' ^ "\x00" in
  Alcotest.(check bool) "overlong encoding rejected" true
    (try
       ignore (V.read_unsigned overlong (ref 0));
       false
     with Relstore.Errors.Corrupt _ -> true)

let suite =
  [
    Alcotest.test_case "varint unsigned (10k cases)" `Quick test_varint_unsigned;
    Alcotest.test_case "varint signed (10k cases)" `Quick test_varint_signed;
    Alcotest.test_case "strings (10k cases)" `Quick test_string_roundtrip;
    Alcotest.test_case "values (10k cases)" `Quick test_value_roundtrip;
    Alcotest.test_case "rows + row_size (10k cases)" `Quick test_row_roundtrip_and_size;
    Alcotest.test_case "frames + frame_size (10k cases)" `Quick test_frame_roundtrip_and_size;
    Alcotest.test_case "frame streams" `Quick test_frames_concatenate;
    Alcotest.test_case "overlong varint" `Quick test_overlong_varint_rejected;
  ]
