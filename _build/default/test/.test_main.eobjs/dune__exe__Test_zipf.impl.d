test/test_zipf.ml: Alcotest Array Float Provkit_util
