test/test_webmodel.ml: Alcotest Array Hashtbl List Option Provkit_util String Webmodel
