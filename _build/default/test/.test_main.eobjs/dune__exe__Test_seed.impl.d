test/test_seed.ml: Printf Provkit_util Sys
