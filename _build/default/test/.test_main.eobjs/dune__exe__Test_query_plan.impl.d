test/test_query_plan.ml: Alcotest Format List Printf Relstore
