test/test_places_queries.ml: Alcotest Browser Core_fixtures Int List Provkit_util Webmodel
