test/test_stats.ml: Alcotest List Provkit_util
