test/test_relstore_sql.ml: Alcotest Array Core Core_fixtures List Provkit_util Relstore
