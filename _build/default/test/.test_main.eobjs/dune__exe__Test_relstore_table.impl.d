test/test_relstore_table.ml: Alcotest Array Buffer List Relstore
