test/test_harness.ml: Alcotest Browser Core Harness Lazy List Relstore
