test/test_digraph.ml: Alcotest List Printf Provgraph
