test/test_prng.ml: Alcotest Array Float Fun Int List Provkit_util String
