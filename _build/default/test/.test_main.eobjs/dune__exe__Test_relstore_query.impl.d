test/test_relstore_query.ml: Alcotest Array Filename Format Fun List Relstore String Sys
