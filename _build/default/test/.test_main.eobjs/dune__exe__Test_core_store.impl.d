test/test_core_store.ml: Alcotest Browser Core Fun Int List Option QCheck QCheck_alcotest Sys
