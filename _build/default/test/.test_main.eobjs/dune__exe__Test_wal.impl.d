test/test_wal.ml: Alcotest Array Browser Core Core_fixtures Filename Fun List Printf Provkit_util Relstore String Sys Test_seed Webmodel
