test/test_textindex.ml: Alcotest List Textindex
