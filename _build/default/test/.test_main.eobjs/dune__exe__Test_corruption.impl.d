test/test_corruption.ml: Alcotest Browser Bytes Char Core List Printexc Printf Provkit_util Relstore String Test_seed
