test/test_event_codec.ml: Alcotest Browser Core Core_fixtures Filename Fun List Relstore String Sys
