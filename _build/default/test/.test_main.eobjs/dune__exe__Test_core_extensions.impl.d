test/test_core_extensions.ml: Alcotest Browser Core Core_fixtures Float Int List Option Provkit_util Webmodel
