test/test_sessions_dot.ml: Alcotest Browser Core Core_fixtures Filename Float Fun List Option Provgraph Provkit_util String Sys Webmodel
