test/test_faulty_io.ml: Alcotest Buffer Char Filename Fun Provkit_util String Sys
