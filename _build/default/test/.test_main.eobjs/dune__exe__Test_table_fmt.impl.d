test/test_table_fmt.ml: Alcotest List Provkit_util String
