test/test_crc32.ml: Alcotest Char Provkit_util String Test_seed
