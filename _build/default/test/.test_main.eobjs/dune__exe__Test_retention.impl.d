test/test_retention.ml: Alcotest Browser Core Core_fixtures List Option Relstore Webmodel
