test/core_fixtures.ml: Array Browser Core List Provkit_util Webmodel
