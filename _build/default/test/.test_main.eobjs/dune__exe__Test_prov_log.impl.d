test/test_prov_log.ml: Alcotest Browser Buffer Core Core_fixtures Filename Fun List QCheck QCheck_alcotest Relstore String Sys
