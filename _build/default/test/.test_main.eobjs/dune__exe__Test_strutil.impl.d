test/test_strutil.ml: Alcotest Provkit_util
