test/test_core_schema.ml: Alcotest Browser Core Core_fixtures List Option Provgraph Relstore
