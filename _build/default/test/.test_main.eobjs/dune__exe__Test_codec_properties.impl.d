test/test_codec_properties.ml: Alcotest Array Buffer Bytes Char Format Int64 List Provkit_util Relstore String Test_seed
