test/test_suggest.ml: Alcotest Array Browser Core Core_fixtures List Option Provkit_util String Webmodel
