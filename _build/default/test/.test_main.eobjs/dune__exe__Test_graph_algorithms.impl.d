test/test_graph_algorithms.ml: Alcotest Float Hashtbl Int List Option Provgraph Provkit_util QCheck QCheck_alcotest String
