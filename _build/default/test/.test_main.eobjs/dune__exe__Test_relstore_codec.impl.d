test/test_relstore_codec.ml: Alcotest Array Buffer Bytes List QCheck QCheck_alcotest Relstore String
