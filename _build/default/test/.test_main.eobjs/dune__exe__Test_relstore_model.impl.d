test/test_relstore_model.ml: Array Buffer Int List Printf QCheck QCheck_alcotest Relstore String
