test/test_core_capture.ml: Alcotest Browser Core Core_fixtures List Option Provgraph QCheck QCheck_alcotest Webmodel
