test/test_core_queries.ml: Alcotest Array Browser Core Core_fixtures Int List Option Provkit_util Relstore String Textindex Webmodel
