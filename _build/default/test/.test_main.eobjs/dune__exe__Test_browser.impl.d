test/test_browser.ml: Alcotest Array Browser Int List Provkit_util Textindex Webmodel
