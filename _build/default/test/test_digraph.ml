(* The directed multigraph: adjacency, degrees, removal, iteration. *)

module G = Provgraph.Digraph

let diamond () =
  (* 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4 *)
  let g = G.create () in
  List.iter (fun n -> G.add_node g n (Printf.sprintf "n%d" n)) [ 1; 2; 3; 4 ];
  G.add_edge g ~src:1 ~dst:2 "a";
  G.add_edge g ~src:1 ~dst:3 "b";
  G.add_edge g ~src:2 ~dst:4 "c";
  G.add_edge g ~src:3 ~dst:4 "d";
  g

let test_nodes_and_payloads () =
  let g = diamond () in
  Alcotest.(check int) "node count" 4 (G.node_count g);
  Alcotest.(check int) "edge count" 4 (G.edge_count g);
  Alcotest.(check string) "payload" "n2" (G.node g 2);
  Alcotest.(check (option string)) "node_opt absent" None (G.node_opt g 99);
  Alcotest.(check bool) "mem" true (G.mem_node g 1);
  Alcotest.(check (list int)) "nodes sorted" [ 1; 2; 3; 4 ] (G.nodes g)

let test_payload_replace () =
  let g = diamond () in
  G.add_node g 2 "renamed";
  Alcotest.(check string) "replaced" "renamed" (G.node g 2);
  Alcotest.(check int) "edges kept" 4 (G.edge_count g)

let test_adjacency () =
  let g = diamond () in
  Alcotest.(check (list int)) "succ 1" [ 2; 3 ] (G.succ g 1);
  Alcotest.(check (list int)) "pred 4" [ 2; 3 ] (G.pred g 4);
  Alcotest.(check (list (pair int string))) "out edges ordered" [ (2, "a"); (3, "b") ]
    (G.out_edges g 1);
  Alcotest.(check (list (pair int string))) "in edges" [ (2, "c"); (3, "d") ] (G.in_edges g 4);
  Alcotest.(check int) "out degree" 2 (G.out_degree g 1);
  Alcotest.(check int) "in degree" 2 (G.in_degree g 4);
  Alcotest.(check (list int)) "unknown node empty" [] (G.succ g 42)

let test_multi_edges () =
  let g = diamond () in
  G.add_edge g ~src:1 ~dst:2 "again";
  Alcotest.(check int) "multi edge counted" 5 (G.edge_count g);
  Alcotest.(check int) "out degree counts multiplicity" 3 (G.out_degree g 1);
  Alcotest.(check (list int)) "succ dedupes" [ 2; 3 ] (G.succ g 1)

let test_self_loop () =
  let g = G.create () in
  G.add_node g 1 ();
  G.add_edge g ~src:1 ~dst:1 "loop";
  Alcotest.(check int) "edge" 1 (G.edge_count g);
  Alcotest.(check (list int)) "self succ" [ 1 ] (G.succ g 1);
  G.remove_node g 1;
  Alcotest.(check int) "loop removed" 0 (G.edge_count g)

let test_edge_requires_endpoints () =
  let g = G.create () in
  G.add_node g 1 ();
  Alcotest.check_raises "unknown dst" (Invalid_argument "Digraph.add_edge: unknown dst")
    (fun () -> G.add_edge g ~src:1 ~dst:2 ());
  Alcotest.check_raises "unknown src" (Invalid_argument "Digraph.add_edge: unknown src")
    (fun () -> G.add_edge g ~src:5 ~dst:1 ())

let test_remove_node () =
  let g = diamond () in
  G.remove_node g 2;
  Alcotest.(check int) "node gone" 3 (G.node_count g);
  Alcotest.(check int) "incident edges gone" 2 (G.edge_count g);
  Alcotest.(check (list int)) "succ updated" [ 3 ] (G.succ g 1);
  Alcotest.(check (list int)) "pred updated" [ 3 ] (G.pred g 4);
  G.remove_node g 42 (* unknown: no-op *)

let test_iteration () =
  let g = diamond () in
  let nodes = G.fold_nodes g ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  Alcotest.(check int) "fold nodes" 4 nodes;
  let edges = G.fold_edges g ~init:[] ~f:(fun acc s d _ -> (s, d) :: acc) in
  Alcotest.(check int) "fold edges" 4 (List.length edges);
  let seen = ref 0 in
  G.iter_edges g (fun _ _ _ -> incr seen);
  Alcotest.(check int) "iter edges" 4 !seen;
  Alcotest.(check (list int)) "filter nodes" [ 1; 2 ]
    (G.filter_nodes g (fun id _ -> id <= 2))

let suite =
  [
    Alcotest.test_case "nodes and payloads" `Quick test_nodes_and_payloads;
    Alcotest.test_case "payload replace" `Quick test_payload_replace;
    Alcotest.test_case "adjacency" `Quick test_adjacency;
    Alcotest.test_case "multi edges" `Quick test_multi_edges;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    Alcotest.test_case "edge endpoints checked" `Quick test_edge_requires_endpoints;
    Alcotest.test_case "remove node" `Quick test_remove_node;
    Alcotest.test_case "iteration" `Quick test_iteration;
  ]
