(* Session segmentation and DOT export. *)

module F = Core_fixtures
module Engine = Browser.Engine
module Sessions = Core.Sessions
module Dot = Core.Dot_export
module Store = Core.Prov_store

let two_session_history () =
  let web, engine, api = F.make ~seed:71 () in
  let tab = Engine.open_tab engine ~time:1000 () in
  let a = F.article web and h = F.hub web in
  let _ = Engine.visit_typed engine ~time:1000 ~tab h in
  let _ = Engine.visit_link engine ~time:1100 ~tab a in
  Engine.close_tab engine ~time:1200 tab;
  (* Four hours later: a second session. *)
  let tab2 = Engine.open_tab engine ~time:15_400 () in
  let _ = Engine.visit_typed engine ~time:15_400 ~tab:tab2 a in
  Engine.close_tab engine ~time:15_500 tab2;
  (web, engine, api)

let test_detect_two_sessions () =
  let _web, _engine, api = two_session_history () in
  let store = Core.Api.store api in
  match Sessions.detect store with
  | [ s1; s2 ] ->
    Alcotest.(check int) "first id" 0 s1.Sessions.id;
    Alcotest.(check int) "second id" 1 s2.Sessions.id;
    Alcotest.(check int) "first has two visits" 2 (Sessions.visit_count s1);
    Alcotest.(check int) "second has one" 1 (Sessions.visit_count s2);
    Alcotest.(check int) "first start" 1000 s1.Sessions.start;
    Alcotest.(check bool) "first stop covers close" true (s1.Sessions.stop >= 1100);
    Alcotest.(check bool) "chronological" true (s1.Sessions.stop < s2.Sessions.start)
  | other -> Alcotest.failf "expected 2 sessions, got %d" (List.length other)

let test_detect_gap_parameter () =
  let _web, _engine, api = two_session_history () in
  let store = Core.Api.store api in
  (* A huge gap threshold merges everything. *)
  Alcotest.(check int) "one merged session" 1
    (List.length (Sessions.detect ~gap:1_000_000 store))

let test_session_at () =
  let _web, _engine, api = two_session_history () in
  let sessions = Sessions.detect (Core.Api.store api) in
  (match Sessions.at sessions ~time:1050 with
  | Some s -> Alcotest.(check int) "first session found" 0 s.Sessions.id
  | None -> Alcotest.fail "no session at 1050");
  Alcotest.(check bool) "gap time uncovered" true (Sessions.at sessions ~time:8000 = None)

let test_top_terms_and_describe () =
  let _web, _engine, api = two_session_history () in
  let store = Core.Api.store api in
  match Sessions.detect store with
  | s :: _ ->
    let terms = Sessions.top_terms store s in
    Alcotest.(check bool) "has terms" true (terms <> []);
    List.iter (fun (_, n) -> Alcotest.(check bool) "positive counts" true (n > 0)) terms;
    let line = Sessions.describe store s in
    Alcotest.(check bool) "describe mentions visits" true
      (Provkit_util.Strutil.contains_substring ~needle:"2 visits" line)
  | [] -> Alcotest.fail "no sessions"

let test_matching_sessions () =
  let _web, _engine, api, trace = F.simulated ~seed:72 ~days:2 () in
  let store = Core.Api.store api in
  let index = Core.Api.text_index api in
  let sessions = Sessions.detect store in
  Alcotest.(check bool) "several sessions" true (List.length sessions >= 3);
  match trace.Browser.User_model.searches with
  | [] -> ()
  | e :: _ ->
    let hits = Sessions.matching index sessions e.Browser.User_model.query in
    Alcotest.(check bool) "query matches some session" true (hits <> []);
    let scores = List.map snd hits in
    Alcotest.(check bool) "descending" true
      (List.sort (fun a b -> Float.compare b a) scores = scores)

let test_sessions_partition_visits () =
  let _web, _engine, api, _trace = F.simulated ~seed:73 ~days:1 () in
  let store = Core.Api.store api in
  let sessions = Sessions.detect store in
  let total = List.fold_left (fun acc s -> acc + Sessions.visit_count s) 0 sessions in
  let displayed =
    List.length
      (Provgraph.Digraph.filter_nodes (Store.graph store) (fun _ n ->
           Core.Time_edges.displayed_visit n && n.Core.Prov_node.time <> None))
  in
  Alcotest.(check int) "every displayed visit in exactly one session" displayed total

(* --- DOT export --- *)

let test_dot_export_well_formed () =
  let _web, _engine, api = two_session_history () in
  let store = Core.Api.store api in
  let roots = Store.nodes_of_kind store Core.Prov_node.is_page in
  let dot = Dot.export store ~roots in
  Alcotest.(check bool) "digraph header" true
    (Provkit_util.Strutil.is_prefix ~prefix:"digraph provenance {" dot);
  Alcotest.(check bool) "closed" true (Provkit_util.Strutil.is_suffix ~suffix:"}\n" dot);
  Alcotest.(check bool) "has nodes" true
    (Provkit_util.Strutil.contains_substring ~needle:"shape=\"box\"" dot);
  Alcotest.(check bool) "has edges" true
    (Provkit_util.Strutil.contains_substring ~needle:"->" dot);
  (* Balanced braces and quotes. *)
  let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 dot in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check bool) "even quotes" true (count '"' mod 2 = 0)

let test_dot_time_edges_toggle () =
  let web, engine, api = F.make ~seed:74 () in
  let tab_a = Engine.open_tab engine ~time:10 () in
  let _ = Engine.visit_typed engine ~time:20 ~tab:tab_a (F.article web) in
  let tab_b = Engine.open_tab engine ~time:30 () in
  let _ = Engine.visit_typed engine ~time:40 ~tab:tab_b (F.hub web) in
  let store = Core.Api.store api in
  let roots = Store.nodes_of_kind store Core.Prov_node.is_visit in
  let without = Dot.export store ~roots in
  let with_time = Dot.export ~include_time_edges:true store ~roots in
  Alcotest.(check bool) "no dotted edges by default" false
    (Provkit_util.Strutil.contains_substring ~needle:"same-time" without);
  Alcotest.(check bool) "dotted edges when asked" true
    (Provkit_util.Strutil.contains_substring ~needle:"same-time" with_time)

let test_dot_escaping () =
  let store = Store.create () in
  let _ =
    Store.add_page store ~url:"http://x/q?a=\"quoted\"" ~title:"title with \"quotes\" and \\slash"
      ~time:1
  in
  let roots = Store.nodes_of_kind store Core.Prov_node.is_page in
  let dot = Dot.export store ~roots in
  Alcotest.(check bool) "escaped quotes" true
    (Provkit_util.Strutil.contains_substring ~needle:"\\\"" dot)

let test_dot_lineage_chain () =
  let web, engine, api = F.make ~seed:75 () in
  let tab = Engine.open_tab engine ~time:10 () in
  let host = F.first_of_kind web Webmodel.Page_content.Download_host in
  let _ = Engine.visit_typed engine ~time:20 ~tab host in
  let _ = Engine.visit_typed engine ~time:25 ~tab host in
  let _ = Engine.visit_typed engine ~time:28 ~tab host in
  let file = F.file_of_host web host in
  let download_id, _ = Engine.download engine ~time:30 ~tab ~file_page:file in
  let store = Core.Api.store api in
  let dnode = Option.get (Store.download_node store download_id) in
  match Core.Lineage.first_recognizable store dnode with
  | None -> Alcotest.fail "no origin"
  | Some origin ->
    let dot = Dot.export_lineage store origin in
    Alcotest.(check bool) "chain arrows" true
      (Provkit_util.Strutil.contains_substring ~needle:"->" dot);
    Alcotest.(check bool) "download node styled" true
      (Provkit_util.Strutil.contains_substring ~needle:"shape=\"note\"" dot)

let test_dot_save () =
  let _web, _engine, api = two_session_history () in
  let store = Core.Api.store api in
  let path = Filename.temp_file "prov_dot" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dot.save ~path (Dot.export store ~roots:(Store.nodes_of_kind store Core.Prov_node.is_page));
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Alcotest.(check bool) "file written" true (in_channel_length ic > 0)))

let suite =
  [
    Alcotest.test_case "detect two sessions" `Quick test_detect_two_sessions;
    Alcotest.test_case "gap parameter" `Quick test_detect_gap_parameter;
    Alcotest.test_case "session at" `Quick test_session_at;
    Alcotest.test_case "top terms / describe" `Quick test_top_terms_and_describe;
    Alcotest.test_case "matching sessions" `Quick test_matching_sessions;
    Alcotest.test_case "sessions partition visits" `Quick test_sessions_partition_visits;
    Alcotest.test_case "dot well-formed" `Quick test_dot_export_well_formed;
    Alcotest.test_case "dot time edge toggle" `Quick test_dot_time_edges_toggle;
    Alcotest.test_case "dot escaping" `Quick test_dot_escaping;
    Alcotest.test_case "dot lineage chain" `Quick test_dot_lineage_chain;
    Alcotest.test_case "dot save" `Quick test_dot_save;
  ]
