(* Seeding for the randomized suites.

   Every randomized test draws its generator from here: a fixed default
   seed keeps `dune runtest` reproducible, the PROV_TEST_SEED environment
   variable overrides it for exploratory sweeps, and each test announces
   the seed it used on stdout — Alcotest replays captured output when a
   test fails, so a failure always names the value that reproduces it. *)

let value =
  match Sys.getenv_opt "PROV_TEST_SEED" with
  | None | Some "" -> 20090213
  | Some s -> begin
    match int_of_string_opt s with
    | Some n -> n
    | None ->
      Printf.eprintf "PROV_TEST_SEED=%S is not an integer\n" s;
      exit 2
  end

let announce () = Printf.printf "PROV_TEST_SEED=%d (re-export to reproduce)\n%!" value

let prng ~salt =
  announce ();
  Provkit_util.Prng.create (value + salt)
