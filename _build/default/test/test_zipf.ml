module Zipf = Provkit_util.Zipf
module Prng = Provkit_util.Prng

let test_probabilities_sum () =
  let z = Zipf.create ~n:50 ~s:1.0 in
  let total = ref 0.0 in
  for k = 0 to 49 do
    total := !total +. Zipf.probability z k
  done;
  if Float.abs (!total -. 1.0) > 1e-9 then Alcotest.failf "mass sums to %f" !total

let test_probabilities_decreasing () =
  let z = Zipf.create ~n:30 ~s:1.2 in
  for k = 1 to 29 do
    if Zipf.probability z k > Zipf.probability z (k - 1) +. 1e-12 then
      Alcotest.failf "mass increased at rank %d" k
  done

let test_uniform_when_s_zero () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for k = 0 to 9 do
    let p = Zipf.probability z k in
    if Float.abs (p -. 0.1) > 1e-9 then Alcotest.failf "not uniform: %f" p
  done

let test_samples_in_range () =
  let z = Zipf.create ~n:7 ~s:1.0 in
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    let k = Zipf.sample z rng in
    if k < 0 || k >= 7 then Alcotest.failf "sample out of range: %d" k
  done

let test_sampling_matches_mass () =
  let z = Zipf.create ~n:5 ~s:1.0 in
  let rng = Prng.create 77 in
  let n = 50_000 in
  let counts = Array.make 5 0 in
  for _ = 1 to n do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 4 do
    let observed = float_of_int counts.(k) /. float_of_int n in
    let expected = Zipf.probability z k in
    if Float.abs (observed -. expected) > 0.01 then
      Alcotest.failf "rank %d: observed %f expected %f" k observed expected
  done

let test_singleton () =
  let z = Zipf.create ~n:1 ~s:1.0 in
  let rng = Prng.create 1 in
  Alcotest.check Alcotest.int "only rank" 0 (Zipf.sample z rng);
  Alcotest.check (Alcotest.float 1e-9) "unit mass" 1.0 (Zipf.probability z 0)

let test_accessors () =
  let z = Zipf.create ~n:12 ~s:0.8 in
  Alcotest.check Alcotest.int "size" 12 (Zipf.size z);
  Alcotest.check (Alcotest.float 1e-9) "exponent" 0.8 (Zipf.exponent z)

let suite =
  [
    Alcotest.test_case "mass sums to 1" `Quick test_probabilities_sum;
    Alcotest.test_case "mass decreasing in rank" `Quick test_probabilities_decreasing;
    Alcotest.test_case "s=0 is uniform" `Quick test_uniform_when_s_zero;
    Alcotest.test_case "samples in range" `Quick test_samples_in_range;
    Alcotest.test_case "sampling matches mass" `Quick test_sampling_matches_mass;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "accessors" `Quick test_accessors;
  ]
