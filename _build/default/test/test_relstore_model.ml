(* Model-based testing of Relstore.Table: random operation sequences are
   applied both to the real table (with indexes) and to a trivial
   association-list model; every observable must agree, and serialized
   round trips must preserve the state. *)

module R = Relstore

type op =
  | Insert of string * int
  | Update of int * int  (* pick rowid by position modulo live rows; new qty *)
  | Delete of int
  | Lookup_qty of int  (* find_by qty *)

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      (5, map2 (fun s n -> Insert (s, n)) (string_size ~gen:(char_range 'a' 'z') (return 3)) (int_bound 5));
      (2, map2 (fun i n -> Update (i, n)) (int_bound 50) (int_bound 5));
      (2, map (fun i -> Delete i) (int_bound 50));
      (2, map (fun n -> Lookup_qty n) (int_bound 5));
    ]

let print_op = function
  | Insert (s, n) -> Printf.sprintf "Insert(%s,%d)" s n
  | Update (i, n) -> Printf.sprintf "Update(%d,%d)" i n
  | Delete i -> Printf.sprintf "Delete(%d)" i
  | Lookup_qty n -> Printf.sprintf "Lookup(%d)" n

let schema () =
  R.Schema.make ~name:"model"
    [ R.Column.make "name" R.Value.Ttext; R.Column.make "qty" R.Value.Tint ]

(* The model: (rowid, name, qty) assoc list plus a next-id counter. *)
type model = { mutable rows : (int * string * int) list; mutable next : int }

let model_pick m i =
  match m.rows with
  | [] -> None
  | rows -> Some (List.nth rows (i mod List.length rows))

let apply_model m = function
  | Insert (name, qty) ->
    m.rows <- m.rows @ [ (m.next, name, qty) ];
    m.next <- m.next + 1
  | Update (i, qty) -> begin
    match model_pick m i with
    | None -> ()
    | Some (rowid, name, _) ->
      m.rows <- List.map (fun (r, n, q) -> if r = rowid then (r, name, qty) else (r, n, q)) m.rows
  end
  | Delete i -> begin
    match model_pick m i with
    | None -> ()
    | Some (rowid, _, _) -> m.rows <- List.filter (fun (r, _, _) -> r <> rowid) m.rows
  end
  | Lookup_qty _ -> ()

let apply_table table m op =
  (* The table mirrors the model's choice of victim so both sides stay
     aligned. *)
  match op with
  | Insert (name, qty) ->
    ignore
      (R.Table.insert_fields table [ ("name", R.Value.Text name); ("qty", R.Value.Int qty) ])
  | Update (i, qty) -> begin
    match model_pick m i with
    | None -> ()
    | Some (rowid, _, _) -> R.Table.update_field table rowid "qty" (R.Value.Int qty)
  end
  | Delete i -> begin
    match model_pick m i with
    | None -> ()
    | Some (rowid, _, _) -> R.Table.delete table rowid
  end
  | Lookup_qty _ -> ()

let observe_table table =
  List.map
    (fun (rowid, row) ->
      (rowid, R.Value.to_text row.(0), R.Value.to_int row.(1)))
    (R.Table.rows table)

let agree table m =
  observe_table table = m.rows
  && List.for_all
       (fun qty ->
         let via_index =
           List.map fst (R.Table.find_by table ~columns:[ "qty" ] [ R.Value.Int qty ])
         in
         let via_model =
           List.filter_map (fun (r, _, q) -> if q = qty then Some r else None) m.rows
         in
         List.sort Int.compare via_index = List.sort Int.compare via_model)
       [ 0; 1; 2; 3; 4; 5 ]

let run_ops ops =
  let table = R.Table.create (schema ()) in
  R.Table.add_index table ~name:"by_qty" ~columns:[ "qty" ];
  let m = { rows = []; next = 1 } in
  List.for_all
    (fun op ->
      (* Table first: it reads the model to pick victims, so the model
         must not have advanced yet. *)
      apply_table table m op;
      apply_model m op;
      agree table m)
    ops

let prop_model_agreement =
  QCheck.Test.make ~name:"table agrees with model under random ops" ~count:120
    (QCheck.make ~print:(fun ops -> String.concat ";" (List.map print_op ops))
       (QCheck.Gen.list_size (QCheck.Gen.int_bound 40) op_gen))
    run_ops

let prop_serialization_preserves_state =
  QCheck.Test.make ~name:"serialize/deserialize preserves table state" ~count:60
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 30) op_gen)) (fun ops ->
      let table = R.Table.create (schema ()) in
      R.Table.add_index table ~name:"by_qty" ~columns:[ "qty" ];
      let m = { rows = []; next = 1 } in
      List.iter
        (fun op ->
          apply_table table m op;
          apply_model m op)
        ops;
      let buf = Buffer.create 256 in
      R.Table.serialize buf table;
      let pos = ref 0 in
      let table' = R.Table.deserialize (Buffer.contents buf) pos in
      observe_table table' = observe_table table && agree table' m)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_model_agreement;
    QCheck_alcotest.to_alcotest prop_serialization_preserves_state;
  ]
