(* The four use-case queries (S2.1-S2.4), metrics, and the Api facade. *)

module F = Core_fixtures
module Web = Webmodel.Web_graph
module Page = Webmodel.Page_content
module Engine = Browser.Engine
module Store = Core.Prov_store
module CS = Core.Contextual_search
module TS = Core.Time_search
module L = Core.Lineage
module M = Core.Metrics

let page_url web pid = Webmodel.Url.to_string (Web.page web pid).Page.url

(* A scripted rosebud episode: search an ambiguous term, click a planted
   result, walk one link further.  Returns the api plus the two pages. *)
let rosebud_session () =
  let web, engine, api = F.make ~seed:2009 () in
  let ambiguity = List.hd (Web.ambiguities web) in
  let tab = Engine.open_tab engine ~time:100 () in
  let _serp, results = Engine.search engine ~time:110 ~tab ambiguity.Web.term in
  let clicked =
    match
      List.find_opt
        (fun (r : Webmodel.Search_engine.result) ->
          List.mem r.Webmodel.Search_engine.page ambiguity.Web.pages_a)
        results
    with
    | Some r -> r.Webmodel.Search_engine.page
    | None -> failwith "planted page not in results"
  in
  let _cv = Engine.click_result engine ~time:120 ~tab clicked in
  let onward =
    Array.to_list (Web.page web clicked).Page.links
    |> List.find (fun l -> (Web.page web l).Page.kind <> Page.Redirect)
  in
  let _ov = Engine.visit_link engine ~time:130 ~tab onward in
  Engine.close_tab engine ~time:140 tab;
  (web, engine, api, ambiguity, clicked, onward)

(* --- contextual history search (S2.1) --- *)

let test_contextual_finds_descendant () =
  let web, _engine, api, ambiguity, clicked, onward = rosebud_session () in
  let response = Core.Api.contextual_history_search api ambiguity.Web.term in
  let pages =
    List.map (fun (r : CS.result) -> Core.Api.page_url api r.CS.page) response.CS.results
  in
  Alcotest.(check bool) "clicked page returned" true (List.mem (page_url web clicked) pages);
  Alcotest.(check bool) "onward page returned (pure provenance)" true
    (List.mem (page_url web onward) pages);
  Alcotest.(check bool) "not truncated" false response.CS.truncated

let test_textual_baseline_misses_descendant () =
  let web, _engine, api, ambiguity, _clicked, onward = rosebud_session () in
  let results = CS.textual_only ~limit:10 (Core.Api.text_index api) ambiguity.Web.term in
  let pages = List.map (fun (r : CS.result) -> Core.Api.page_url api r.CS.page) results in
  Alcotest.(check bool) "text-only misses the onward page" false
    (List.mem (page_url web onward) pages)

let test_contextual_scores_decompose () =
  let _web, _engine, api, ambiguity, _clicked, _onward = rosebud_session () in
  let response = Core.Api.contextual_history_search api ambiguity.Web.term in
  List.iter
    (fun (r : CS.result) ->
      Alcotest.(check (float 1e-9)) "score = text + graph"
        (r.CS.text_score +. r.CS.graph_score)
        r.CS.score)
    response.CS.results

let test_contextual_budget_truncates () =
  let _web, _engine, api, ambiguity, _clicked, _onward = rosebud_session () in
  let response =
    CS.search
      ~budget:{ Core.Query_budget.deadline_ms = None; node_budget = Some 1 }
      (Core.Api.text_index api) ambiguity.Web.term
  in
  Alcotest.(check bool) "tiny budget truncates" true response.CS.truncated

let test_contextual_empty_query () =
  let _web, _engine, api, _ambiguity, _clicked, _onward = rosebud_session () in
  let response = Core.Api.contextual_history_search api "zzz unknown terms" in
  Alcotest.(check (list unit)) "no results for unknown terms" []
    (List.map (fun _ -> ()) response.CS.results)

(* --- personalization (S2.2) --- *)

let test_personalize_picks_topical_terms () =
  let web, engine, api = F.make ~seed:4 () in
  let ambiguity = List.hd (Web.ambiguities web) in
  (* Browse sense-B pages heavily, then expand the ambiguous query. *)
  let tab = Engine.open_tab engine ~time:100 () in
  let clock = ref 100 in
  List.iter
    (fun p ->
      clock := !clock + 20;
      ignore (Engine.visit_typed engine ~time:!clock ~tab p))
    (ambiguity.Web.pages_b @ ambiguity.Web.pages_b);
  Engine.close_tab engine ~time:(!clock + 20) tab;
  let expansion = Core.Api.personalize_web_search api ambiguity.Web.term in
  Alcotest.(check bool) "terms added" true (expansion.Core.Personalize.added_terms <> []);
  Alcotest.(check bool) "expanded differs" true
    (expansion.Core.Personalize.expanded <> expansion.Core.Personalize.original);
  Alcotest.(check bool) "original preserved as prefix" true
    (Provkit_util.Strutil.is_prefix ~prefix:ambiguity.Web.term
       expansion.Core.Personalize.expanded);
  (* The added terms must not repeat the query itself. *)
  List.iter
    (fun (term, _) ->
      Alcotest.(check bool) "no echo of the query" false (term = ambiguity.Web.term))
    expansion.Core.Personalize.added_terms

let test_personalize_empty_history () =
  let _web, _engine, api = F.make () in
  let expansion = Core.Api.personalize_web_search api "rosebud" in
  Alcotest.(check string) "no context, no expansion" "rosebud"
    expansion.Core.Personalize.expanded

(* --- time-contextual search (S2.3) --- *)

let test_time_search_co_open_beats_far () =
  let web, engine, api = F.make ~seed:6 () in
  (* Two wine articles: one co-open with a "tickets" search, one visited
     a day later. *)
  let wine_pages =
    List.filter (fun p -> (Web.page web p).Page.kind = Page.Article) (Web.pages_of_topic web 0)
  in
  let near, far =
    match wine_pages with a :: b :: _ -> (a, b) | _ -> failwith "need 2 articles"
  in
  let tab_a = Engine.open_tab engine ~time:1000 () in
  let _ = Engine.visit_typed engine ~time:1010 ~tab:tab_a near in
  let tab_b = Engine.open_tab engine ~time:1020 () in
  let _ = Engine.search engine ~time:1030 ~tab:tab_b "plane tickets" in
  Engine.close_tab engine ~time:1100 tab_a;
  Engine.close_tab engine ~time:1100 tab_b;
  let tab = Engine.open_tab engine ~time:90_000 () in
  let _ = Engine.visit_typed engine ~time:90_010 ~tab far in
  Engine.close_tab engine ~time:90_100 tab;
  let topic_name = Webmodel.Topic.name (Web.topic web 0) in
  let response =
    Core.Api.time_contextual_search api ~query:topic_name ~context:"plane tickets"
  in
  let rank p =
    M.rank_of ~equal:String.equal (page_url web p)
      (List.map (fun (r : TS.result) -> Core.Api.page_url api r.TS.page) response.TS.results)
  in
  (match (rank near, rank far) with
  | Some rn, Some rf ->
    Alcotest.(check bool) "co-open page outranks distant page" true (rn < rf)
  | Some _, None -> ()  (* distant page filtered out entirely: fine *)
  | None, _ -> Alcotest.fail "co-open page missing from results");
  match response.TS.results with
  | top :: _ ->
    Alcotest.(check (option int)) "top result gap 0" (Some 0) top.TS.best_gap
  | [] -> Alcotest.fail "no results"

let test_time_search_window () =
  let web, engine, api = F.make ~seed:7 () in
  let a = F.article web in
  let tab = Engine.open_tab engine ~time:5000 () in
  let _ = Engine.visit_typed engine ~time:5010 ~tab a in
  Engine.close_tab engine ~time:5100 tab;
  let title = (Web.page web a).Page.title in
  let query = String.concat " " (Textindex.Tokenizer.terms ~stem:false title) in
  let index = Core.Api.text_index api in
  let ti = Core.Api.time_index api in
  let hit = TS.search_window index ti ~query ~start:5000 ~stop:5200 in
  Alcotest.(check bool) "found in window" true
    (List.exists (fun (r : TS.result) -> Core.Api.page_url api r.TS.page = page_url web a)
       hit.TS.results);
  let miss = TS.search_window index ti ~query ~start:9000 ~stop:9999 in
  Alcotest.(check (list unit)) "not found outside window" []
    (List.map (fun _ -> ()) miss.TS.results)

(* --- download lineage (S2.4) --- *)

let scripted_download () =
  let web, engine, api = F.make ~seed:8 () in
  let host = F.first_of_kind web Page.Download_host in
  let tab = Engine.open_tab engine ~time:10 () in
  (* Build a chain: hub (visited repeatedly, recognizable) -> article ->
     host -> download. *)
  let hub = F.hub web in
  let _ = Engine.visit_typed engine ~time:20 ~tab hub in
  let _ = Engine.visit_typed engine ~time:25 ~tab hub in
  let _ = Engine.visit_typed engine ~time:30 ~tab hub in
  let _ = Engine.visit_link engine ~time:40 ~tab (F.article web) in
  let _ = Engine.visit_link engine ~time:50 ~tab host in
  let file = F.file_of_host web host in
  let download_id, _ = Engine.download engine ~time:60 ~tab ~file_page:file in
  Engine.close_tab engine ~time:70 tab;
  (web, engine, api, host, hub, download_id)

let test_lineage_ancestors () =
  let web, _engine, api, host, hub, download_id = scripted_download () in
  let store = Core.Api.store api in
  let dnode = Option.get (Store.download_node store download_id) in
  let anc = L.ancestors store dnode in
  Alcotest.(check bool) "not truncated" false anc.L.truncated;
  let pages =
    List.filter_map
      (fun (n, _) ->
        match (Store.node store n).Core.Prov_node.kind with
        | Core.Prov_node.Page { url; _ } -> Some url
        | _ -> None)
      anc.L.ancestors
  in
  Alcotest.(check bool) "host page among ancestors" true (List.mem (page_url web host) pages);
  Alcotest.(check bool) "session hub among ancestors" true (List.mem (page_url web hub) pages);
  (* Distances are breadth-first: sorted ascending in visit order. *)
  let distances = List.map snd anc.L.ancestors in
  Alcotest.(check bool) "distances non-decreasing" true
    (List.sort compare distances = distances)

let test_first_recognizable () =
  let web, _engine, api, host, hub, download_id = scripted_download () in
  let store = Core.Api.store api in
  let dnode = Option.get (Store.download_node store download_id) in
  match L.first_recognizable store dnode with
  | None -> Alcotest.fail "no origin"
  | Some origin ->
    let url =
      match (Store.node store origin.L.node).Core.Prov_node.kind with
      | Core.Prov_node.Page { url; _ } -> url
      | _ -> "?"
    in
    (* The host page was visited once; the hub three times (and typed).
       The nearest recognizable ancestor must be a page the recognizer
       accepts; with the default thresholds that is the hub, unless the
       host was typed-navigated (it was not: it was reached by link). *)
    Alcotest.(check string) "origin is the typed hub" (page_url web hub) url;
    ignore host;
    (* The path starts at the download and ends at the origin. *)
    (match (origin.L.path, List.rev origin.L.path) with
    | first :: _, last :: _ ->
      Alcotest.(check int) "path starts at download" dnode first;
      Alcotest.(check int) "path ends at origin" origin.L.node last
    | _ -> Alcotest.fail "degenerate path");
    Alcotest.(check int) "distance = path length - 1" (List.length origin.L.path - 1)
      origin.L.distance;
    (* describe_path renders one line per node *)
    Alcotest.(check int) "description lines" (List.length origin.L.path)
      (List.length (L.describe_path store origin.L.path))

let test_downloads_descending () =
  let web, _engine, api, host, _hub, download_id = scripted_download () in
  let store = Core.Api.store api in
  let dnode = Option.get (Store.download_node store download_id) in
  let result = Core.Api.downloads_from_page api ~url:(page_url web host) in
  Alcotest.(check (list int)) "the download descends from its host" [ dnode ]
    result.L.downloads;
  (* An unrelated page yields nothing. *)
  let unrelated = Core.Api.downloads_from_page api ~url:"http://nowhere.example/x" in
  Alcotest.(check (list int)) "unknown url empty" [] unrelated.L.downloads

let test_lineage_never_follows_time_edges () =
  (* Two unrelated sessions co-open in time: time edges must not leak
     into lineage. *)
  let web, engine, api = F.make ~seed:12 () in
  let store = Core.Api.store api in
  let host = F.first_of_kind web Page.Download_host in
  let tab_a = Engine.open_tab engine ~time:10 () in
  let unrelated = F.hub web in
  let _ = Engine.visit_typed engine ~time:20 ~tab:tab_a unrelated in
  let tab_b = Engine.open_tab engine ~time:30 () in
  let _ = Engine.visit_typed engine ~time:40 ~tab:tab_b host in
  let file = F.file_of_host web host in
  let download_id, _ = Engine.download engine ~time:50 ~tab:tab_b ~file_page:file in
  let dnode = Option.get (Store.download_node store download_id) in
  let anc = L.ancestors store dnode in
  let ancestor_pages =
    List.filter_map
      (fun (n, _) ->
        match (Store.node store n).Core.Prov_node.kind with
        | Core.Prov_node.Page { url; _ } -> Some url
        | _ -> None)
      anc.L.ancestors
  in
  Alcotest.(check bool) "co-open page not in lineage" false
    (List.mem (page_url web unrelated) ancestor_pages)

let test_api_download_lineage_wrapper () =
  let _web, _engine, api, _host, _hub, download_id = scripted_download () in
  Alcotest.(check bool) "wrapper finds origin" true
    (Core.Api.download_lineage api ~download_id <> None);
  Alcotest.(check bool) "unknown download None" true
    (Core.Api.download_lineage api ~download_id:999 = None)

(* --- metrics --- *)

let test_metrics () =
  Alcotest.(check (option int)) "rank found" (Some 2)
    (M.rank_of ~equal:Int.equal 5 [ 9; 5; 1 ]);
  Alcotest.(check (option int)) "rank missing" None (M.rank_of ~equal:Int.equal 7 [ 9; 5 ]);
  Alcotest.(check (float 1e-9)) "rr" 0.5 (M.reciprocal_rank (Some 2));
  Alcotest.(check (float 1e-9)) "rr miss" 0.0 (M.reciprocal_rank None);
  Alcotest.(check (float 1e-9)) "mrr" 0.75 (M.mrr [ Some 1; Some 2 ]);
  Alcotest.(check (float 1e-9)) "mrr empty" 0.0 (M.mrr []);
  Alcotest.(check (float 1e-9)) "hit@1" 0.5 (M.hit_at 1 [ Some 1; Some 3 ]);
  Alcotest.(check (float 1e-9)) "hit@3" 1.0 (M.hit_at 3 [ Some 1; Some 3 ]);
  let p, r = M.precision_recall ~relevant:[ 1; 2; 3 ] ~retrieved:[ 2; 3; 4; 5 ] in
  Alcotest.(check (float 1e-9)) "precision" 0.5 p;
  Alcotest.(check (float 1e-9)) "recall" (2.0 /. 3.0) r;
  let p0, r0 = M.precision_recall ~relevant:[] ~retrieved:[] in
  Alcotest.(check (float 1e-9)) "empty precision" 1.0 p0;
  Alcotest.(check (float 1e-9)) "empty recall" 1.0 r0;
  Alcotest.(check (float 1e-9)) "f1" 0.5 (M.f1 ~precision:0.5 ~recall:0.5);
  Alcotest.(check (float 1e-9)) "f1 zero" 0.0 (M.f1 ~precision:0.0 ~recall:0.0);
  Alcotest.(check (option (float 1e-9))) "mean rank" (Some 2.0)
    (M.mean_rank [ Some 1; Some 3; None ]);
  Alcotest.(check (option (float 1e-9))) "mean rank all missing" None (M.mean_rank [ None ])

(* --- api housekeeping --- *)

let test_api_index_refresh () =
  let web, engine, api = F.make ~seed:13 () in
  let tab = Engine.open_tab engine ~time:10 () in
  let a = F.article web in
  let _ = Engine.visit_typed engine ~time:20 ~tab a in
  let index1 = Core.Api.text_index api in
  Alcotest.(check bool) "indexed something" true (Core.Prov_text_index.indexed_count index1 > 0);
  (* Browsing a lot more forces a lazy rebuild on next access. *)
  List.iter
    (fun p ->
      if Page.is_navigable (Web.page web p) then
        ignore (Engine.visit_typed engine ~time:(100 + p) ~tab p))
    (Web.pages_of_topic web 1);
  Core.Api.refresh api;
  let index2 = Core.Api.text_index api in
  Alcotest.(check bool) "index grew" true
    (Core.Prov_text_index.indexed_count index2 > Core.Prov_text_index.indexed_count index1)

let test_api_persist () =
  let _web, _engine, api, _ambiguity, _clicked, _onward = rosebud_session () in
  let db = Core.Api.persist api in
  Alcotest.(check bool) "non-empty image" true (Relstore.Database.total_size db > 0);
  let store' = Core.Prov_schema.of_database db in
  Alcotest.(check int) "round trip node count"
    (Store.node_count (Core.Api.store api))
    (Store.node_count store')

let suite =
  [
    Alcotest.test_case "contextual finds descendant" `Quick test_contextual_finds_descendant;
    Alcotest.test_case "textual baseline misses" `Quick test_textual_baseline_misses_descendant;
    Alcotest.test_case "contextual score decomposition" `Quick test_contextual_scores_decompose;
    Alcotest.test_case "contextual budget truncates" `Quick test_contextual_budget_truncates;
    Alcotest.test_case "contextual empty query" `Quick test_contextual_empty_query;
    Alcotest.test_case "personalize topical terms" `Quick test_personalize_picks_topical_terms;
    Alcotest.test_case "personalize empty history" `Quick test_personalize_empty_history;
    Alcotest.test_case "time search co-open wins" `Quick test_time_search_co_open_beats_far;
    Alcotest.test_case "time search window" `Quick test_time_search_window;
    Alcotest.test_case "lineage ancestors" `Quick test_lineage_ancestors;
    Alcotest.test_case "first recognizable" `Quick test_first_recognizable;
    Alcotest.test_case "downloads descending" `Quick test_downloads_descending;
    Alcotest.test_case "lineage ignores time edges" `Quick test_lineage_never_follows_time_edges;
    Alcotest.test_case "api lineage wrapper" `Quick test_api_download_lineage_wrapper;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "api index refresh" `Quick test_api_index_refresh;
    Alcotest.test_case "api persist" `Quick test_api_persist;
  ]
