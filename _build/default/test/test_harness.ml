(* The experiment harness on a miniature dataset: datasets are
   deterministic, every experiment produces a well-formed report, and
   the headline claims hold in miniature. *)

module D = Harness.Dataset
module E = Harness.Experiments
module R = Harness.Report
module UM = Browser.User_model

let tiny () = D.with_days ~seed:123 3

let dataset = lazy (tiny ())

let test_dataset_deterministic () =
  let a = tiny () and b = tiny () in
  Alcotest.(check int) "same node count"
    (Core.Prov_store.node_count (D.store a))
    (Core.Prov_store.node_count (D.store b));
  Alcotest.(check int) "same searches"
    (List.length a.D.trace.UM.searches)
    (List.length b.D.trace.UM.searches)

let test_dataset_dual_captures () =
  let ds = Lazy.force dataset in
  let full = Core.Prov_store.node_count (D.store ds) in
  let ff = Core.Prov_store.node_count (Core.Capture.store ds.D.ff_capture) in
  Alcotest.(check bool) "firefox capture smaller" true (ff < full);
  Alcotest.(check bool) "firefox capture non-empty" true (ff > 0)

let test_dataset_mappings () =
  let ds = Lazy.force dataset in
  (* Every clicked page has a provenance node and a place. *)
  List.iter
    (fun (e : UM.search_episode) ->
      match e.UM.clicked_page with
      | None -> ()
      | Some p ->
        Alcotest.(check bool) "page node exists" true (D.page_node ds p <> None);
        Alcotest.(check bool) "place exists" true (D.place_of_web_page ds p <> None))
    ds.D.trace.UM.searches

let check_report (r : R.t) =
  Alcotest.(check bool) (r.R.id ^ " has rows") true (r.R.rows <> []);
  let arity = List.length r.R.header in
  List.iter
    (fun row -> Alcotest.(check int) (r.R.id ^ " row arity") arity (List.length row))
    r.R.rows

let test_reports_well_formed () =
  let ds = Lazy.force dataset in
  List.iter check_report
    [
      E.e1_history_scale ds;
      E.e2_storage_overhead ds;
      E.e3_query_latency ~samples:6 ds;
      E.e4_contextual_quality ~max_episodes:10 ds;
      E.e5_personalization ~max_episodes:5 ds;
      E.e6_time_context ds;
      E.e7_download_lineage ~max_episodes:10 ds;
      E.e9_versioning ds;
      E.e10_redirect_ablation ~max_episodes:5 ds;
      E.e11_capture_ablation ~max_episodes:5 ds;
    ]

let test_e2_overhead_shape () =
  let ds = Lazy.force dataset in
  let places = Relstore.Database.total_size (Relstore.Database.of_bytes (Relstore.Database.to_bytes (Browser.Places_db.database (D.places ds)))) in
  let prov =
    Relstore.Database.total_size (Core.Prov_schema.to_database (D.store ds))
  in
  let overhead = float_of_int prov /. float_of_int places -. 1.0 in
  (* The paper reports 39.5%; we assert the shape: a modest constant
     factor, not a blow-up and not free. *)
  Alcotest.(check bool) "overhead positive" true (overhead > 0.0);
  Alcotest.(check bool) "overhead under 100%" true (overhead < 1.0)

let test_e4_provenance_beats_baseline_on_opaque () =
  let ds = D.with_days ~seed:7 6 in
  let report = E.e4_contextual_quality ~max_episodes:120 ds in
  (* rows: baseline all / contextual all / baseline opaque / contextual
     opaque; column 2 is MRR. *)
  let mrr row = float_of_string (List.nth row 2) in
  match report.R.rows with
  | [ _ba; _ca; bo; co ] ->
    Alcotest.(check (float 1e-6)) "baseline blind on opaque" 0.0 (mrr bo);
    Alcotest.(check bool) "contextual sees opaque" true (mrr co > 0.0)
  | _ -> Alcotest.fail "unexpected report shape"

let test_e1_scale_scales_with_days () =
  let small = D.with_days ~seed:5 2 in
  let bigger = D.with_days ~seed:5 4 in
  Alcotest.(check bool) "more days, more nodes" true
    (Core.Prov_store.node_count (D.store bigger)
    > Core.Prov_store.node_count (D.store small))

let test_report_print_does_not_raise () =
  let ds = Lazy.force dataset in
  (* Printing goes to stdout; we only assert it does not raise. *)
  R.print (E.e1_history_scale ds)

let test_report_formatters () =
  Alcotest.(check string) "bytes MB" "2.00 MB" (R.fmt_bytes 2_097_152);
  Alcotest.(check string) "bytes KB" "1.5 KB" (R.fmt_bytes 1536);
  Alcotest.(check string) "bytes B" "17 B" (R.fmt_bytes 17);
  Alcotest.(check string) "pct" "39.5%" (R.fmt_pct 0.395);
  Alcotest.(check string) "ms" "1.23 ms" (R.fmt_ms 1.234)

let suite =
  [
    Alcotest.test_case "dataset deterministic" `Quick test_dataset_deterministic;
    Alcotest.test_case "dual captures" `Quick test_dataset_dual_captures;
    Alcotest.test_case "dataset mappings" `Quick test_dataset_mappings;
    Alcotest.test_case "reports well-formed" `Slow test_reports_well_formed;
    Alcotest.test_case "E2 overhead shape" `Quick test_e2_overhead_shape;
    Alcotest.test_case "E4 opaque advantage" `Slow test_e4_provenance_beats_baseline_on_opaque;
    Alcotest.test_case "E1 scales with days" `Slow test_e1_scale_scales_with_days;
    Alcotest.test_case "report printing" `Quick test_report_print_does_not_raise;
    Alcotest.test_case "report formatters" `Quick test_report_formatters;
  ]
