(* History_tree (S3.1's tree-structure observation) and the alternative
   graph-ranking algorithms (S4's future work). *)

module F = Core_fixtures
module Engine = Browser.Engine
module Store = Core.Prov_store
module HT = Core.History_tree
module CS = Core.Contextual_search

(* --- history tree --- *)

let scripted_tree () =
  let web, engine, api = F.make ~seed:21 () in
  let tab = Engine.open_tab engine ~time:10 () in
  let a = F.article web and h = F.hub web in
  let v1 = Engine.visit_typed engine ~time:20 ~tab h in
  let v2 = Engine.visit_link engine ~time:30 ~tab a in
  (* A second tab spawned from the first. *)
  let tab2 = Engine.open_tab engine ~time:40 ~opener:tab () in
  let v3 = Engine.visit_typed engine ~time:50 ~tab:tab2 h in
  Engine.close_tab engine ~time:60 tab;
  Engine.close_tab engine ~time:61 tab2;
  let store = Core.Api.store api in
  let node v = Option.get (Store.visit_node store v.Engine.visit_id) in
  (web, store, HT.build store, node v1, node v2, node v3)

let test_tree_structure () =
  let _web, _store, tree, n1, n2, n3 = scripted_tree () in
  Alcotest.(check bool) "is a forest" true (HT.is_forest tree);
  (match HT.node tree n2 with
  | Some n ->
    Alcotest.(check (option int)) "link child's parent" (Some n1) n.HT.parent;
    Alcotest.(check bool) "edge kind" true (n.HT.edge = Some Core.Prov_edge.Link_traversal)
  | None -> Alcotest.fail "visit missing from tree");
  (match HT.node tree n1 with
  | Some n ->
    Alcotest.(check (option int)) "session root" None n.HT.parent;
    Alcotest.(check (list int)) "root's child" [ n2 ] n.HT.children
  | None -> Alcotest.fail "root missing");
  (* The new tab was spawned while the article (v2) was displayed, so
     its first visit descends from v2, not from the session root. *)
  (match HT.node tree n3 with
  | Some n ->
    Alcotest.(check (option int)) "tab spawn parent" (Some n2) n.HT.parent;
    Alcotest.(check bool) "spawn edge kind" true (n.HT.edge = Some Core.Prov_edge.Tab_spawn)
  | None -> Alcotest.fail "spawned visit missing");
  Alcotest.(check (list int)) "roots" [ n1 ] (HT.roots tree);
  Alcotest.(check int) "depth of root" 0 (HT.depth tree n1);
  Alcotest.(check int) "depth of child" 1 (HT.depth tree n2);
  Alcotest.(check int) "depth of spawned" 2 (HT.depth tree n3);
  Alcotest.(check (list int)) "subtree preorder" [ n1; n2; n3 ] (HT.subtree tree n1)

let test_tree_excludes_non_displayed () =
  let web, engine, api = F.make ~seed:22 () in
  let tab = Engine.open_tab engine ~time:10 () in
  let host = F.first_of_kind web Webmodel.Page_content.Download_host in
  let _ = Engine.visit_typed engine ~time:20 ~tab host in
  let file = F.file_of_host web host in
  let _, fetch = Engine.download engine ~time:30 ~tab ~file_page:file in
  let store = Core.Api.store api in
  let tree = HT.build store in
  let fetch_node = Option.get (Store.visit_node store fetch.Engine.visit_id) in
  Alcotest.(check bool) "download fetch not in the view" true (HT.node tree fetch_node = None)

let test_tree_on_random_browsing () =
  let _web, _engine, api, _trace = F.simulated ~seed:23 ~days:2 () in
  let store = Core.Api.store api in
  let tree = HT.build store in
  Alcotest.(check bool) "forest on random browsing" true (HT.is_forest tree);
  Alcotest.(check bool) "non-trivial" true (HT.size tree > 50);
  (* Every displayed visit appears exactly once across all subtrees. *)
  let total =
    List.fold_left (fun acc root -> acc + List.length (HT.subtree tree root)) 0 (HT.roots tree)
  in
  Alcotest.(check int) "subtrees partition the forest" (HT.size tree) total

let test_tree_storage_comparison () =
  let _web, _engine, api, _trace = F.simulated ~seed:24 ~days:1 () in
  let store = Core.Api.store api in
  let tree = HT.build store in
  let c = HT.storage_comparison store tree in
  Alcotest.(check int) "visit count matches" (HT.size tree) c.HT.visits;
  Alcotest.(check bool) "tree encoding smaller" true
    (c.HT.parent_pointer_bytes < c.HT.edge_table_bytes);
  Alcotest.(check bool) "non-degenerate" true (c.HT.parent_pointer_bytes > 0)

let test_tree_render () =
  let _web, store, tree, _n1, _n2, _n3 = scripted_tree () in
  let out = HT.render store tree in
  Alcotest.(check bool) "mentions the typed marker" true
    (Provkit_util.Strutil.contains_substring ~needle:"(new tab)" out);
  Alcotest.(check bool) "indented children" true
    (Provkit_util.Strutil.contains_substring ~needle:"\n  " out);
  let capped = HT.render ~max_nodes:1 store tree in
  Alcotest.(check bool) "truncation marked" true
    (Provkit_util.Strutil.contains_substring ~needle:"truncated" capped)

(* --- alternative ranking algorithms --- *)

let rosebud_api () =
  let web, engine, api = F.make ~seed:25 () in
  let ambiguity = List.hd (Webmodel.Web_graph.ambiguities web) in
  let tab = Engine.open_tab engine ~time:100 () in
  let _serp, results = Engine.search engine ~time:110 ~tab ambiguity.Webmodel.Web_graph.term in
  let clicked =
    match results with
    | r :: _ -> r.Webmodel.Search_engine.page
    | [] -> failwith "no results"
  in
  let _ = Engine.click_result engine ~time:120 ~tab clicked in
  Engine.close_tab engine ~time:130 tab;
  (web, api, ambiguity.Webmodel.Web_graph.term, clicked)

let page_urls api (resp : CS.response) =
  List.map (fun (r : CS.result) -> Core.Api.page_url api r.CS.page) resp.CS.results

let test_pagerank_variant_finds_click () =
  let web, api, term, clicked = rosebud_api () in
  let url = Webmodel.Url.to_string (Webmodel.Web_graph.page web clicked).Webmodel.Page_content.url in
  let resp = CS.search_pagerank (Core.Api.text_index api) term in
  Alcotest.(check bool) "pagerank variant returns the click" true
    (List.mem url (page_urls api resp))

let test_hits_variant_finds_click () =
  let web, api, term, clicked = rosebud_api () in
  let url = Webmodel.Url.to_string (Webmodel.Web_graph.page web clicked).Webmodel.Page_content.url in
  let resp = CS.search_hits (Core.Api.text_index api) term in
  Alcotest.(check bool) "hits variant returns the click" true
    (List.mem url (page_urls api resp))

let test_variants_respect_budget () =
  let _web, api, term, _clicked = rosebud_api () in
  let budget = { Core.Query_budget.deadline_ms = None; node_budget = Some 1 } in
  let resp = CS.search_pagerank ~budget (Core.Api.text_index api) term in
  Alcotest.(check bool) "pagerank truncates" true resp.CS.truncated;
  let resp = CS.search_hits ~budget (Core.Api.text_index api) term in
  Alcotest.(check bool) "hits truncates" true resp.CS.truncated

let test_variants_agree_on_simulated_history () =
  let _web, _engine, api, trace = F.simulated ~seed:26 ~days:1 () in
  match trace.Browser.User_model.searches with
  | [] -> ()
  | e :: _ ->
    let index = Core.Api.text_index api in
    let q = e.Browser.User_model.query in
    (* All three produce ranked, deduplicated page lists. *)
    List.iter
      (fun resp ->
        let pages = List.map (fun (r : CS.result) -> r.CS.page) resp.CS.results in
        Alcotest.(check int) "no duplicate pages" (List.length pages)
          (List.length (List.sort_uniq Int.compare pages));
        let scores = List.map (fun (r : CS.result) -> r.CS.score) resp.CS.results in
        Alcotest.(check bool) "scores descending" true
          (List.sort (fun a b -> Float.compare b a) scores = scores))
      [ CS.search index q; CS.search_pagerank index q; CS.search_hits index q ]

let suite =
  [
    Alcotest.test_case "tree structure" `Quick test_tree_structure;
    Alcotest.test_case "tree excludes fetches" `Quick test_tree_excludes_non_displayed;
    Alcotest.test_case "tree on random browsing" `Quick test_tree_on_random_browsing;
    Alcotest.test_case "tree storage comparison" `Quick test_tree_storage_comparison;
    Alcotest.test_case "tree render" `Quick test_tree_render;
    Alcotest.test_case "pagerank variant" `Quick test_pagerank_variant_finds_click;
    Alcotest.test_case "hits variant" `Quick test_hits_variant_finds_click;
    Alcotest.test_case "variants respect budget" `Quick test_variants_respect_budget;
    Alcotest.test_case "variants well-formed" `Quick test_variants_agree_on_simulated_history;
  ]
