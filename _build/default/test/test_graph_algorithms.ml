(* Traversals, paths, cycles, HITS, PageRank and neighborhood expansion,
   including qcheck properties on random DAGs. *)

module G = Provgraph.Digraph
module Tr = Provgraph.Traversal
module P = Provgraph.Path
module C = Provgraph.Cycle
module Prng = Provkit_util.Prng

let chain n =
  let g = G.create () in
  for i = 1 to n do
    G.add_node g i ()
  done;
  for i = 1 to n - 1 do
    G.add_edge g ~src:i ~dst:(i + 1) ()
  done;
  g

let diamond () =
  let g = G.create () in
  List.iter (fun n -> G.add_node g n ()) [ 1; 2; 3; 4 ];
  G.add_edge g ~src:1 ~dst:2 ();
  G.add_edge g ~src:1 ~dst:3 ();
  G.add_edge g ~src:2 ~dst:4 ();
  G.add_edge g ~src:3 ~dst:4 ();
  g

let cycle3 () =
  let g = G.create () in
  List.iter (fun n -> G.add_node g n ()) [ 1; 2; 3 ];
  G.add_edge g ~src:1 ~dst:2 ();
  G.add_edge g ~src:2 ~dst:3 ();
  G.add_edge g ~src:3 ~dst:1 ();
  g

(* Random DAG: edges only from lower to higher ids. *)
let random_dag rng n p =
  let g = G.create () in
  for i = 1 to n do
    G.add_node g i ()
  done;
  for i = 1 to n do
    for j = i + 1 to n do
      if Prng.bernoulli rng p then G.add_edge g ~src:i ~dst:j ()
    done
  done;
  g

(* --- BFS --- *)

let test_bfs_depths () =
  let g = diamond () in
  let r = Tr.bfs g ~roots:[ 1 ] in
  Alcotest.(check bool) "not truncated" false r.Tr.truncated;
  Alcotest.(check (list (pair int int))) "depths" [ (1, 0); (2, 1); (3, 1); (4, 2) ] r.Tr.visited

let test_bfs_backward () =
  let g = diamond () in
  let r = Tr.bfs ~direction:Tr.Backward g ~roots:[ 4 ] in
  Alcotest.(check (list (pair int int))) "ancestors with depth"
    [ (4, 0); (2, 1); (3, 1); (1, 2) ]
    r.Tr.visited

let test_bfs_both () =
  let g = chain 5 in
  let r = Tr.bfs ~direction:Tr.Both g ~roots:[ 3 ] in
  Alcotest.(check int) "reaches everything" 5 (List.length r.Tr.visited)

let test_bfs_max_depth () =
  let g = chain 10 in
  let r = Tr.bfs ~max_depth:3 g ~roots:[ 1 ] in
  Alcotest.(check int) "depth-limited" 4 (List.length r.Tr.visited);
  Alcotest.(check bool) "flagged truncated" true r.Tr.truncated

let test_bfs_budget () =
  let g = chain 100 in
  let r = Tr.bfs ~budget:10 g ~roots:[ 1 ] in
  Alcotest.(check bool) "budget truncates" true r.Tr.truncated;
  Alcotest.(check bool) "bounded visits" true (List.length r.Tr.visited <= 12)

let test_bfs_follow_filter () =
  let g = G.create () in
  List.iter (fun n -> G.add_node g n ()) [ 1; 2; 3 ];
  G.add_edge g ~src:1 ~dst:2 "keep";
  G.add_edge g ~src:1 ~dst:3 "skip";
  let r = Tr.bfs ~follow:(fun ~src:_ ~dst:_ e -> e = "keep") g ~roots:[ 1 ] in
  Alcotest.(check (list (pair int int))) "filtered" [ (1, 0); (2, 1) ] r.Tr.visited

let test_bfs_multiple_roots_and_unknown () =
  let g = diamond () in
  let r = Tr.bfs g ~roots:[ 2; 3; 99 ] in
  Alcotest.(check int) "union of reachability" 3 (List.length r.Tr.visited)

let test_ancestors_descendants () =
  let g = diamond () in
  let anc = Tr.ancestors g 4 in
  Alcotest.(check (list int)) "ancestors exclude self" [ 2; 3; 1 ]
    (List.map fst anc.Tr.visited);
  let desc = Tr.descendants g 1 in
  Alcotest.(check (list int)) "descendants" [ 2; 3; 4 ] (List.map fst desc.Tr.visited)

let test_dfs_postorder () =
  let g = chain 4 in
  Alcotest.(check (list int)) "postorder of a chain" [ 4; 3; 2; 1 ]
    (Tr.dfs_postorder g ~roots:[ 1 ])

(* --- paths --- *)

let test_shortest_path () =
  let g = diamond () in
  (match P.shortest_path g ~src:1 ~dst:4 with
  | Some [ 1; mid; 4 ] when mid = 2 || mid = 3 -> ()
  | other ->
    Alcotest.failf "unexpected path %s"
      (match other with
      | None -> "none"
      | Some p -> String.concat "," (List.map string_of_int p)));
  Alcotest.(check (option (list int))) "self path" (Some [ 1 ]) (P.shortest_path g ~src:1 ~dst:1);
  Alcotest.(check (option (list int))) "unreachable" None (P.shortest_path g ~src:4 ~dst:1);
  Alcotest.(check (option int)) "distance" (Some 2) (P.distance g ~src:1 ~dst:4)

let test_shortest_path_backward () =
  let g = diamond () in
  match P.shortest_path ~direction:Tr.Backward g ~src:4 ~dst:1 with
  | Some path -> Alcotest.(check int) "length 3" 3 (List.length path)
  | None -> Alcotest.fail "backward path missing"

let test_first_matching_ancestor () =
  let g = chain 6 in
  (match P.first_matching_ancestor g ~start:6 ~matches:(fun n -> n <= 3) with
  | Some (node, path) ->
    Alcotest.(check int) "nearest match" 3 node;
    Alcotest.(check (list int)) "path from start back" [ 6; 5; 4; 3 ] path
  | None -> Alcotest.fail "no ancestor found");
  Alcotest.(check bool) "no match is None" true
    (P.first_matching_ancestor g ~start:3 ~matches:(fun n -> n > 90) = None)

let test_all_paths () =
  let g = diamond () in
  let paths = P.all_paths g ~src:1 ~dst:4 in
  Alcotest.(check int) "two simple paths" 2 (List.length paths);
  let g2 = cycle3 () in
  (* Cycles must not make this diverge. *)
  Alcotest.(check int) "one simple path in cycle" 1 (List.length (P.all_paths g2 ~src:1 ~dst:3))

(* --- cycles / topo --- *)

let test_cycle_detection () =
  Alcotest.(check bool) "chain acyclic" false (C.has_cycle (chain 5));
  Alcotest.(check bool) "diamond acyclic" false (C.has_cycle (diamond ()));
  Alcotest.(check bool) "cycle detected" true (C.has_cycle (cycle3 ()))

let test_find_cycle_witness () =
  match C.find_cycle (cycle3 ()) with
  | Some witness ->
    Alcotest.(check int) "cycle length" 3 (List.length (List.sort_uniq Int.compare witness))
  | None -> Alcotest.fail "cycle not found"

let test_self_loop_cycle () =
  let g = G.create () in
  G.add_node g 1 ();
  G.add_edge g ~src:1 ~dst:1 ();
  Alcotest.(check bool) "self loop is a cycle" true (C.has_cycle g)

let test_topological_sort () =
  (match C.topological_sort (diamond ()) with
  | Some [ 1; 2; 3; 4 ] -> ()
  | Some other -> Alcotest.failf "order %s" (String.concat "," (List.map string_of_int other))
  | None -> Alcotest.fail "diamond should sort");
  Alcotest.(check bool) "cyclic graph has no topo order" true
    (C.topological_sort (cycle3 ()) = None)

let test_sccs () =
  let g = G.create () in
  List.iter (fun n -> G.add_node g n ()) [ 1; 2; 3; 4 ];
  G.add_edge g ~src:1 ~dst:2 ();
  G.add_edge g ~src:2 ~dst:1 ();
  G.add_edge g ~src:2 ~dst:3 ();
  G.add_edge g ~src:3 ~dst:4 ();
  let sccs = C.strongly_connected_components g in
  let sorted = List.sort compare sccs in
  Alcotest.(check (list (list int))) "components" [ [ 1; 2 ]; [ 3 ]; [ 4 ] ] sorted

(* --- HITS / PageRank --- *)

let test_hits_hub_authority () =
  (* 1 and 2 point at 3 and 4; 3,4 are authorities, 1,2 hubs. *)
  let g = G.create () in
  List.iter (fun n -> G.add_node g n ()) [ 1; 2; 3; 4 ];
  List.iter
    (fun (s, d) -> G.add_edge g ~src:s ~dst:d ())
    [ (1, 3); (1, 4); (2, 3); (2, 4) ];
  let scores = Provgraph.Hits.run g in
  let top_auth = Provgraph.Hits.top scores `Authority 2 in
  let top_hub = Provgraph.Hits.top scores `Hub 2 in
  Alcotest.(check (list int)) "authorities" [ 3; 4 ] (List.sort compare (List.map fst top_auth));
  Alcotest.(check (list int)) "hubs" [ 1; 2 ] (List.sort compare (List.map fst top_hub))

let test_hits_subset () =
  let g = diamond () in
  let scores = Provgraph.Hits.run ~subset:[ 1; 2 ] g in
  Alcotest.(check int) "only subset scored" 2 (List.length (Provgraph.Hits.top scores `Hub 10))

let test_pagerank_sums_to_one () =
  let rng = Prng.create 3 in
  let g = random_dag rng 30 0.1 in
  let pr = Provgraph.Pagerank.run g in
  let total = Hashtbl.fold (fun _ v acc -> acc +. v) pr 0.0 in
  if Float.abs (total -. 1.0) > 1e-6 then Alcotest.failf "mass %f" total

let test_pagerank_sink_attracts () =
  let g = chain 3 in
  let pr = Provgraph.Pagerank.run g in
  let get n = Option.value ~default:0.0 (Hashtbl.find_opt pr n) in
  Alcotest.(check bool) "downstream outranks upstream" true (get 3 > get 1)

let test_personalized_pagerank () =
  let g = diamond () in
  let pr = Provgraph.Pagerank.run ~personalization:[ (2, 1.0) ] g in
  let get n = Option.value ~default:0.0 (Hashtbl.find_opt pr n) in
  Alcotest.(check bool) "restart node favored over sibling" true (get 2 > get 3)

(* --- neighborhood --- *)

let test_neighborhood_decay () =
  let g = chain 4 in
  let config =
    { Provgraph.Neighborhood.default_config with Provgraph.Neighborhood.max_hops = 3; decay = 0.5; direction = Tr.Forward }
  in
  let scores, truncated = Provgraph.Neighborhood.expand ~config g ~seeds:[ (1, 1.0) ] in
  Alcotest.(check bool) "not truncated" false truncated;
  let get n = Option.value ~default:0.0 (Hashtbl.find_opt scores n) in
  Alcotest.(check (float 1e-9)) "seed" 1.0 (get 1);
  Alcotest.(check (float 1e-9)) "hop 1" 0.5 (get 2);
  Alcotest.(check (float 1e-9)) "hop 2" 0.25 (get 3);
  Alcotest.(check (float 1e-9)) "hop 3" 0.125 (get 4)

let test_neighborhood_additive_seeds () =
  let g = chain 3 in
  let config =
    { Provgraph.Neighborhood.default_config with Provgraph.Neighborhood.max_hops = 2; decay = 0.5; direction = Tr.Both }
  in
  let scores, _ = Provgraph.Neighborhood.expand ~config g ~seeds:[ (1, 1.0); (3, 1.0) ] in
  let get n = Option.value ~default:0.0 (Hashtbl.find_opt scores n) in
  (* node 2 receives 0.5 from each side *)
  Alcotest.(check (float 1e-9)) "mass adds" 1.0 (get 2)

let test_neighborhood_ranked () =
  let scores = Hashtbl.create 4 in
  Hashtbl.replace scores 1 0.3;
  Hashtbl.replace scores 2 0.9;
  Hashtbl.replace scores 3 0.9;
  Alcotest.(check (list int)) "rank order with tie" [ 2; 3; 1 ]
    (List.map fst (Provgraph.Neighborhood.ranked scores))

(* --- properties on random DAGs --- *)

let dag_gen =
  QCheck.Gen.(
    map2
      (fun seed n -> (seed, 2 + n))
      int (int_bound 28))

let prop_random_dag_acyclic_and_sortable =
  QCheck.Test.make ~name:"random DAGs: acyclic, topo-sortable, topo order respects edges"
    ~count:60
    (QCheck.make dag_gen) (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = random_dag rng n 0.15 in
      (not (C.has_cycle g))
      &&
      match C.topological_sort g with
      | None -> false
      | Some order ->
        let pos = Hashtbl.create n in
        List.iteri (fun i id -> Hashtbl.replace pos id i) order;
        let ok = ref (List.length order = n) in
        G.iter_edges g (fun s d _ ->
            if Hashtbl.find pos s >= Hashtbl.find pos d then ok := false);
        !ok)

let prop_bfs_depth_is_shortest =
  QCheck.Test.make ~name:"BFS depth equals shortest-path distance" ~count:40
    (QCheck.make dag_gen) (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = random_dag rng n 0.2 in
      let r = Tr.bfs g ~roots:[ 1 ] in
      List.for_all
        (fun (node, depth) ->
          match P.distance g ~src:1 ~dst:node with
          | Some d -> d = depth
          | None -> false)
        r.Tr.visited)

let prop_scc_partition =
  QCheck.Test.make ~name:"SCCs partition the node set" ~count:40 (QCheck.make dag_gen)
    (fun (seed, n) ->
      let rng = Prng.create seed in
      (* add some back edges to create non-trivial SCCs *)
      let g = random_dag rng n 0.15 in
      let nodes = G.nodes g in
      List.iter
        (fun id -> if Prng.bernoulli rng 0.2 && id > 1 then G.add_edge g ~src:id ~dst:1 ())
        nodes;
      let sccs = C.strongly_connected_components g in
      let flattened = List.sort Int.compare (List.concat sccs) in
      flattened = nodes)

let suite =
  [
    Alcotest.test_case "bfs depths" `Quick test_bfs_depths;
    Alcotest.test_case "bfs backward" `Quick test_bfs_backward;
    Alcotest.test_case "bfs both" `Quick test_bfs_both;
    Alcotest.test_case "bfs max depth" `Quick test_bfs_max_depth;
    Alcotest.test_case "bfs budget" `Quick test_bfs_budget;
    Alcotest.test_case "bfs follow filter" `Quick test_bfs_follow_filter;
    Alcotest.test_case "bfs multi-root" `Quick test_bfs_multiple_roots_and_unknown;
    Alcotest.test_case "ancestors/descendants" `Quick test_ancestors_descendants;
    Alcotest.test_case "dfs postorder" `Quick test_dfs_postorder;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "shortest path backward" `Quick test_shortest_path_backward;
    Alcotest.test_case "first matching ancestor" `Quick test_first_matching_ancestor;
    Alcotest.test_case "all paths" `Quick test_all_paths;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "cycle witness" `Quick test_find_cycle_witness;
    Alcotest.test_case "self loop" `Quick test_self_loop_cycle;
    Alcotest.test_case "topological sort" `Quick test_topological_sort;
    Alcotest.test_case "SCCs" `Quick test_sccs;
    Alcotest.test_case "HITS hubs/authorities" `Quick test_hits_hub_authority;
    Alcotest.test_case "HITS subset" `Quick test_hits_subset;
    Alcotest.test_case "pagerank mass" `Quick test_pagerank_sums_to_one;
    Alcotest.test_case "pagerank sink" `Quick test_pagerank_sink_attracts;
    Alcotest.test_case "personalized pagerank" `Quick test_personalized_pagerank;
    Alcotest.test_case "neighborhood decay" `Quick test_neighborhood_decay;
    Alcotest.test_case "neighborhood additive" `Quick test_neighborhood_additive_seeds;
    Alcotest.test_case "neighborhood ranked" `Quick test_neighborhood_ranked;
    QCheck_alcotest.to_alcotest prop_random_dag_acyclic_and_sortable;
    QCheck_alcotest.to_alcotest prop_bfs_depth_is_shortest;
    QCheck_alcotest.to_alcotest prop_scc_partition;
  ]
