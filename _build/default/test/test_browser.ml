(* Browser substrate: transitions, tabs, the engine's event emission and
   the Places baseline's (deliberate) information loss. *)

module Web = Webmodel.Web_graph
module Page = Webmodel.Page_content
module B = Browser
module Engine = Browser.Engine
module Event = Browser.Event
module Places = Browser.Places_db
module Transition = Browser.Transition

let fixture () =
  let web =
    Web.generate
      ~config:
        {
          Web.default_config with
          Web.n_topics = 3;
          sites_per_topic = 2;
          articles_per_site = 4;
        }
      ~seed:5 ()
  in
  let se = Webmodel.Search_engine.build web in
  (web, Engine.create ~web ~search:se ())

let first_article web =
  let rec scan i =
    if i >= Web.page_count web then Alcotest.fail "no article"
    else if (Web.page web i).Page.kind = Page.Article then i
    else scan (i + 1)
  in
  scan 0

let first_of_kind web kind =
  let rec scan i =
    if i >= Web.page_count web then None
    else if (Web.page web i).Page.kind = kind then Some i
    else scan (i + 1)
  in
  scan 0

(* --- transitions --- *)

let test_transition_codes () =
  List.iter
    (fun t ->
      Alcotest.(check bool) "roundtrip" true (Transition.of_code (Transition.to_code t) = t))
    Transition.all;
  Alcotest.(check bool) "codes distinct" true
    (List.length (List.sort_uniq Int.compare (List.map Transition.to_code Transition.all))
    = List.length Transition.all);
  Alcotest.(check bool) "bad code rejected" true
    (try
       ignore (Transition.of_code 99);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "redirect classified" true
    (Transition.is_redirect Transition.Redirect_temporary);
  Alcotest.(check bool) "embed not user initiated" false
    (Transition.is_user_initiated Transition.Embed)

(* --- tabs --- *)

let test_tabs () =
  let tabs = B.Tabs.create () in
  let t1 = B.Tabs.open_tab tabs () in
  let t2 = B.Tabs.open_tab tabs ~opener:t1 () in
  Alcotest.(check bool) "distinct ids" true (t1 <> t2);
  Alcotest.(check (list int)) "open tabs" [ t1; t2 ] (B.Tabs.open_tabs tabs);
  Alcotest.(check (option int)) "opener" (Some t1) (B.Tabs.opener tabs t2);
  Alcotest.(check (option int)) "no current yet" None (B.Tabs.current_visit tabs t1);
  B.Tabs.set_current_visit tabs t1 42;
  Alcotest.(check (option int)) "current set" (Some 42) (B.Tabs.current_visit tabs t1);
  B.Tabs.close_tab tabs t1;
  Alcotest.(check bool) "closed" false (B.Tabs.is_open tabs t1);
  Alcotest.(check bool) "closing twice rejected" true
    (try
       B.Tabs.close_tab tabs t1;
       false
     with Invalid_argument _ -> true);
  let t3 = B.Tabs.open_tab tabs () in
  Alcotest.(check bool) "ids not reused" true (t3 > t2)

(* --- engine event stream --- *)

let collect_events engine =
  let events = ref [] in
  Engine.subscribe engine (fun e -> events := e :: !events);
  fun () -> List.rev !events

let test_engine_visit_flow () =
  let web, engine = fixture () in
  let get_events = collect_events engine in
  let tab = Engine.open_tab engine ~time:10 () in
  let article = first_article web in
  let info = Engine.visit_typed engine ~time:20 ~tab article in
  Alcotest.(check (option int)) "page recorded" (Some article) info.Engine.page;
  (* Typed visit carries no referrer but IS the current visit. *)
  (match Engine.current_visit engine tab with
  | Some v -> Alcotest.(check int) "current" info.Engine.visit_id v.Engine.visit_id
  | None -> Alcotest.fail "no current visit");
  let second = Engine.visit_link engine ~time:30 ~tab article in
  Alcotest.(check bool) "fresh visit id" true (second.Engine.visit_id > info.Engine.visit_id);
  let events = get_events () in
  (* The first navigation must Close nothing; the second must Close the first. *)
  let closes =
    List.filter_map (function Event.Close { visit_id; _ } -> Some visit_id | _ -> None) events
  in
  Alcotest.(check (list int)) "close emitted on renavigation" [ info.Engine.visit_id ] closes;
  (* Link visit events carry the referrer even though Places will drop
     some of them. *)
  let link_visit =
    List.find_map
      (function
        | Event.Visit v when v.Event.visit_id = second.Engine.visit_id -> Some v
        | _ -> None)
      events
  in
  match link_visit with
  | Some v -> Alcotest.(check (option int)) "referrer" (Some info.Engine.visit_id) v.Event.referrer
  | None -> Alcotest.fail "link visit event missing"

let test_engine_redirect_follow () =
  let web, engine = fixture () in
  match first_of_kind web Page.Redirect with
  | None -> Alcotest.fail "fixture web has no redirect"
  | Some redirect ->
    let tab = Engine.open_tab engine ~time:10 () in
    let info = Engine.visit_link engine ~time:20 ~tab redirect in
    (* The returned visit is the final content page, not the redirect. *)
    (match info.Engine.page with
    | Some final ->
      Alcotest.(check bool) "landed on content" true ((Web.page web final).Page.kind <> Page.Redirect)
    | None -> Alcotest.fail "no final page");
    Alcotest.(check bool) "redirect transition recorded" true
      (List.exists
         (function
           | Event.Visit v -> Transition.is_redirect v.Event.transition
           | _ -> false)
         (Engine.event_log engine))

let test_engine_embeds_loaded () =
  let web, engine = fixture () in
  (* Find an article with embeds. *)
  let article =
    Array.to_list (Web.pages web)
    |> List.find_opt (fun (p : Page.t) ->
           p.Page.kind = Page.Article && Array.length p.Page.embeds > 0)
  in
  match article with
  | None -> ()  (* this seed produced no embeds; acceptable *)
  | Some p ->
    let tab = Engine.open_tab engine ~time:10 () in
    let info = Engine.visit_typed engine ~time:20 ~tab p.Page.id in
    let embed_visits =
      List.filter_map
        (function
          | Event.Visit v when v.Event.transition = Transition.Embed -> Some v
          | _ -> None)
        (Engine.event_log engine)
    in
    Alcotest.(check int) "one embed visit per embed" (Array.length p.Page.embeds)
      (List.length embed_visits);
    List.iter
      (fun (v : Event.visit) ->
        Alcotest.(check (option int)) "embed referrer is the page" (Some info.Engine.visit_id)
          v.Event.referrer)
      embed_visits;
    (* Embeds do not become the displayed visit. *)
    match Engine.current_visit engine tab with
    | Some v -> Alcotest.(check int) "top-level still current" info.Engine.visit_id v.Engine.visit_id
    | None -> Alcotest.fail "no current"

let test_engine_search_and_click () =
  let _web, engine = fixture () in
  let tab = Engine.open_tab engine ~time:10 () in
  let serp, results = Engine.search engine ~time:20 ~tab "wine" in
  Alcotest.(check bool) "serp has no page id" true (serp.Engine.page = None);
  Alcotest.(check bool) "results non-empty" true (results <> []);
  let search_events =
    List.filter_map
      (function
        | Event.Search { query; serp_visit; _ } -> Some (query, serp_visit)
        | _ -> None)
      (Engine.event_log engine)
  in
  (match search_events with
  | [ (query, serp_visit) ] ->
    Alcotest.(check string) "query captured" "wine" query;
    Alcotest.(check int) "serp visit linked" serp.Engine.visit_id serp_visit
  | _ -> Alcotest.fail "expected one search event");
  match results with
  | top :: _ ->
    let clicked = Engine.click_result engine ~time:30 ~tab top.Webmodel.Search_engine.page in
    let click_event =
      List.find_map
        (function
          | Event.Visit v when v.Event.visit_id = clicked.Engine.visit_id -> Some v
          | _ -> None)
        (Engine.event_log engine)
    in
    (match click_event with
    | Some v ->
      Alcotest.(check (option int)) "click referred by serp" (Some serp.Engine.visit_id)
        v.Event.referrer
    | None -> Alcotest.fail "click event missing")
  | [] -> ()

let test_engine_download () =
  let web, engine = fixture () in
  match Web.download_hosts web with
  | [] -> Alcotest.fail "no download host"
  | host :: _ ->
    let tab = Engine.open_tab engine ~time:10 () in
    let host_visit = Engine.visit_typed engine ~time:20 ~tab host in
    let file =
      Array.to_list (Web.page web host).Page.links
      |> List.find (fun l -> (Web.page web l).Page.kind = Page.File)
    in
    let download_id, fetch = Engine.download engine ~time:30 ~tab ~file_page:file in
    Alcotest.(check int) "first download id" 1 download_id;
    (* Tab still shows the host page. *)
    (match Engine.current_visit engine tab with
    | Some v -> Alcotest.(check int) "host still displayed" host_visit.Engine.visit_id v.Engine.visit_id
    | None -> Alcotest.fail "no current");
    let dl =
      List.find_map
        (function
          | Event.Download_started { source_visit; visit_id; _ } ->
            Some (source_visit, visit_id)
          | _ -> None)
        (Engine.event_log engine)
    in
    (match dl with
    | Some (source_visit, visit_id) ->
      Alcotest.(check int) "source visit" host_visit.Engine.visit_id source_visit;
      Alcotest.(check int) "fetch visit" fetch.Engine.visit_id visit_id
    | None -> Alcotest.fail "no download event")

let test_engine_bookmarks () =
  let web, engine = fixture () in
  let tab = Engine.open_tab engine ~time:10 () in
  let article = first_article web in
  let _ = Engine.visit_typed engine ~time:20 ~tab article in
  let bookmark = Engine.add_bookmark engine ~time:30 ~tab in
  Alcotest.(check int) "bookmark listed" 1 (List.length (Engine.bookmarks engine));
  let info = Engine.visit_bookmark engine ~time:40 ~tab ~bookmark in
  Alcotest.(check bool) "bookmark navigation" true (info.Engine.transition = Transition.Bookmark);
  Alcotest.(check bool) "unknown bookmark rejected" true
    (try
       ignore (Engine.visit_bookmark engine ~time:50 ~tab ~bookmark:999);
       false
     with Not_found -> true)

let test_engine_reload () =
  let web, engine = fixture () in
  let places = Engine.places engine in
  let tab = Engine.open_tab engine ~time:10 () in
  let article = first_article web in
  let first = Engine.visit_typed engine ~time:20 ~tab article in
  let again = Engine.reload engine ~time:30 ~tab in
  Alcotest.(check bool) "new visit instance" true
    (again.Engine.visit_id > first.Engine.visit_id);
  Alcotest.(check (option int)) "same page" (Some article) again.Engine.page;
  Alcotest.(check bool) "reload transition" true (again.Engine.transition = Transition.Reload);
  (* Places keeps the chain (reload is renderer-driven). *)
  (match Places.visit places again.Engine.visit_id with
  | Some row ->
    Alcotest.(check (option int)) "from_visit kept" (Some first.Engine.visit_id)
      row.Places.from_visit
  | None -> Alcotest.fail "reload visit missing");
  (* Reloads add no frecency but do count as visits. *)
  let url = Webmodel.Url.to_string (Web.page web article).Page.url in
  (match Places.place_by_url places url with
  | Some p -> Alcotest.(check int) "visit_count includes reload" 2 p.Places.visit_count
  | None -> Alcotest.fail "place missing");
  (* Reloading a SERP or an empty tab is rejected. *)
  let tab2 = Engine.open_tab engine ~time:40 () in
  Alcotest.(check bool) "empty tab rejected" true
    (try
       ignore (Engine.reload engine ~time:50 ~tab:tab2);
       false
     with Invalid_argument _ -> true);
  let _ = Engine.search engine ~time:60 ~tab:tab2 "wine" in
  Alcotest.(check bool) "serp rejected" true
    (try
       ignore (Engine.reload engine ~time:70 ~tab:tab2);
       false
     with Invalid_argument _ -> true)

let test_engine_bookmarked_serp () =
  (* Bookmarking a search-result page: the bookmark has no web page id,
     and revisiting it must reproduce the SERP URL. *)
  let _web, engine = fixture () in
  let tab = Engine.open_tab engine ~time:10 () in
  let serp, _ = Engine.search engine ~time:20 ~tab "wine cellar" in
  let bookmark = Engine.add_bookmark engine ~time:30 ~tab in
  let info = Engine.visit_bookmark engine ~time:40 ~tab ~bookmark in
  Alcotest.(check bool) "still no page id" true (info.Engine.page = None);
  Alcotest.(check string) "same url" (Webmodel.Url.to_string serp.Engine.url)
    (Webmodel.Url.to_string info.Engine.url);
  Alcotest.(check bool) "bookmark transition" true
    (info.Engine.transition = Transition.Bookmark)

let test_engine_form_submit () =
  let web, engine = fixture () in
  let tab = Engine.open_tab engine ~time:10 () in
  let article = first_article web in
  let source = Engine.visit_typed engine ~time:20 ~tab article in
  let result = Engine.submit_form engine ~time:30 ~tab ~fields:[ ("q", "x") ] ~result_page:article in
  let ev =
    List.find_map
      (function
        | Event.Form_submitted { source_visit; result_visit; _ } ->
          Some (source_visit, result_visit)
        | _ -> None)
      (Engine.event_log engine)
  in
  match ev with
  | Some (source_visit, result_visit) ->
    Alcotest.(check int) "source" source.Engine.visit_id source_visit;
    Alcotest.(check int) "result" result.Engine.visit_id result_visit
  | None -> Alcotest.fail "form event missing"

(* --- Places fidelity --- *)

let test_places_drops_typed_referrer () =
  let web, engine = fixture () in
  let places = Engine.places engine in
  let tab = Engine.open_tab engine ~time:10 () in
  let article = first_article web in
  let v1 = Engine.visit_link engine ~time:20 ~tab article in
  let v2 = Engine.visit_typed engine ~time:30 ~tab article in
  let v3 = Engine.visit_link engine ~time:40 ~tab article in
  (match Places.visit places v2.Engine.visit_id with
  | Some row ->
    Alcotest.(check (option int)) "typed loses referrer" None row.Places.from_visit
  | None -> Alcotest.fail "typed visit not stored");
  (match Places.visit places v3.Engine.visit_id with
  | Some row ->
    Alcotest.(check (option int)) "link keeps referrer" (Some v2.Engine.visit_id)
      row.Places.from_visit
  | None -> Alcotest.fail "link visit not stored");
  ignore v1

let test_places_counts_and_frecency () =
  let web, engine = fixture () in
  let places = Engine.places engine in
  let tab = Engine.open_tab engine ~time:100 () in
  let article = first_article web in
  let _ = Engine.visit_typed engine ~time:200 ~tab article in
  let _ = Engine.visit_link engine ~time:300 ~tab article in
  let url = Webmodel.Url.to_string (Web.page web article).Page.url in
  match Places.place_by_url places url with
  | Some p ->
    Alcotest.(check int) "visit_count" 2 p.Places.visit_count;
    Alcotest.(check (option int)) "last visit" (Some 300) p.Places.last_visit_date;
    Alcotest.(check bool) "frecency positive" true (p.Places.frecency > 0.0);
    Alcotest.(check bool) "not hidden" false p.Places.hidden
  | None -> Alcotest.fail "place missing"

let test_places_embeds_hidden () =
  let web, engine = fixture () in
  let places = Engine.places engine in
  let article =
    Array.to_list (Web.pages web)
    |> List.find_opt (fun (p : Page.t) ->
           p.Page.kind = Page.Article && Array.length p.Page.embeds > 0)
  in
  match article with
  | None -> ()
  | Some p ->
    let tab = Engine.open_tab engine ~time:10 () in
    let _ = Engine.visit_typed engine ~time:20 ~tab p.Page.id in
    let embed = (Web.page web p.Page.embeds.(0)).Page.url in
    (match Places.place_by_url places (Webmodel.Url.to_string embed) with
    | Some place -> Alcotest.(check bool) "embed hidden" true place.Places.hidden
    | None -> Alcotest.fail "embed place missing")

let test_places_search_goes_to_input_history () =
  let _web, engine = fixture () in
  let places = Engine.places engine in
  let tab = Engine.open_tab engine ~time:10 () in
  let _ = Engine.search engine ~time:20 ~tab "wine cellar" in
  let _ = Engine.search engine ~time:30 ~tab "wine cellar" in
  match Places.input_history places with
  | [ (_, input, uses) ] ->
    Alcotest.(check string) "query stored" "wine cellar" input;
    Alcotest.(check (float 1e-9)) "use count bumped" 2.0 uses
  | other -> Alcotest.failf "expected one input row, got %d" (List.length other)

let test_places_downloads_table () =
  let web, engine = fixture () in
  let places = Engine.places engine in
  (match Web.download_hosts web with
  | [] -> Alcotest.fail "no host"
  | host :: _ ->
    let tab = Engine.open_tab engine ~time:10 () in
    let _ = Engine.visit_typed engine ~time:20 ~tab host in
    let file =
      Array.to_list (Web.page web host).Page.links
      |> List.find (fun l -> (Web.page web l).Page.kind = Page.File)
    in
    let download_id, _ = Engine.download engine ~time:30 ~tab ~file_page:file in
    (match Places.downloads places with
    | [ (id, source, target, start) ] ->
      Alcotest.(check int) "id" download_id id;
      Alcotest.(check bool) "source is file url" true
        (Provkit_util.Strutil.contains_substring ~needle:"files" source);
      Alcotest.(check bool) "target path" true
        (Provkit_util.Strutil.is_prefix ~prefix:"/home/user/downloads/" target);
      Alcotest.(check int) "time" 30 start
    | other -> Alcotest.failf "expected one download, got %d" (List.length other)))

let test_places_ignores_closes_and_tabs () =
  let web, engine = fixture () in
  let places = Engine.places engine in
  let tab = Engine.open_tab engine ~time:10 () in
  let article = first_article web in
  let _ = Engine.visit_typed engine ~time:20 ~tab article in
  let before = Places.visit_count places in
  Engine.close_tab engine ~time:30 tab;
  Alcotest.(check int) "closing adds nothing to Places" before (Places.visit_count places)

(* --- history search baseline --- *)

let test_history_search_matches_own_text_only () =
  let web, engine = fixture () in
  let tab = Engine.open_tab engine ~time:10 () in
  let article = first_article web in
  let info = Engine.visit_typed engine ~time:20 ~tab article in
  let hs = B.History_search.build (Engine.places engine) in
  let title_word =
    match Textindex.Tokenizer.terms ~stem:false info.Engine.title with
    | w :: _ -> w
    | [] -> Alcotest.fail "article title empty"
  in
  (match B.History_search.search hs title_word with
  | r :: _ ->
    let p = Places.place (Engine.places engine) r.B.History_search.place_id in
    Alcotest.(check string) "found by own text" info.Engine.title p.Places.title
  | [] -> Alcotest.fail "title search missed");
  Alcotest.(check (list unit)) "no hallucinated matches" []
    (List.map (fun _ -> ()) (B.History_search.search hs "zzzznonexistent"))

(* --- user model --- *)

let small_user_config =
  {
    B.User_model.default_config with
    B.User_model.days = 3;
    sessions_per_day = 3;
    actions_per_session = 12;
  }

let run_small seed =
  let web, engine = fixture () in
  let rng = Provkit_util.Prng.create seed in
  let trace = B.User_model.run ~config:small_user_config ~rng engine in
  (web, engine, trace)

let test_user_model_produces_history () =
  let _web, engine, trace = run_small 17 in
  Alcotest.(check bool) "actions happened" true (trace.B.User_model.total_actions > 0);
  Alcotest.(check bool) "visits recorded" true (Places.visit_count (Engine.places engine) > 50);
  Alcotest.(check bool) "searches recorded" true (trace.B.User_model.searches <> [])

let test_user_model_deterministic () =
  let _, e1, t1 = run_small 23 in
  let _, e2, t2 = run_small 23 in
  Alcotest.(check int) "same visit count" (Places.visit_count (Engine.places e1))
    (Places.visit_count (Engine.places e2));
  Alcotest.(check int) "same searches" (List.length t1.B.User_model.searches)
    (List.length t2.B.User_model.searches);
  Alcotest.(check int) "same downloads" (List.length t1.B.User_model.downloads)
    (List.length t2.B.User_model.downloads)

let test_user_model_times_monotone () =
  let _web, engine, _trace = run_small 29 in
  let rec check_monotone last = function
    | [] -> ()
    | e :: rest ->
      let t = Event.time e in
      if t < last then Alcotest.failf "time went backwards: %d after %d" t last
      else check_monotone t rest
  in
  check_monotone min_int (Engine.event_log engine)

let test_user_model_tabs_all_closed () =
  let _web, engine, _trace = run_small 31 in
  Alcotest.(check (list int)) "no tab leaks" [] (Engine.open_tabs engine)

let test_user_model_episode_ground_truth () =
  let web, _engine, trace = run_small 37 in
  List.iter
    (fun (e : B.User_model.search_episode) ->
      (match e.B.User_model.clicked_page with
      | Some p -> Alcotest.(check bool) "clicked page valid" true (p < Web.page_count web)
      | None -> ());
      Alcotest.(check bool) "topic valid" true
        (e.B.User_model.intended_topic >= 0 && e.B.User_model.intended_topic < Web.topic_count web))
    trace.B.User_model.searches;
  List.iter
    (fun (d : B.User_model.download_episode) ->
      Alcotest.(check bool) "file kind" true
        ((Web.page web d.B.User_model.file_page).Page.kind = Page.File);
      Alcotest.(check bool) "host kind" true
        ((Web.page web d.B.User_model.host_page).Page.kind = Page.Download_host))
    trace.B.User_model.downloads

let suite =
  [
    Alcotest.test_case "transition codes" `Quick test_transition_codes;
    Alcotest.test_case "tabs" `Quick test_tabs;
    Alcotest.test_case "engine visit flow" `Quick test_engine_visit_flow;
    Alcotest.test_case "engine redirects" `Quick test_engine_redirect_follow;
    Alcotest.test_case "engine embeds" `Quick test_engine_embeds_loaded;
    Alcotest.test_case "engine search and click" `Quick test_engine_search_and_click;
    Alcotest.test_case "engine download" `Quick test_engine_download;
    Alcotest.test_case "engine bookmarks" `Quick test_engine_bookmarks;
    Alcotest.test_case "engine reload" `Quick test_engine_reload;
    Alcotest.test_case "engine bookmarked serp" `Quick test_engine_bookmarked_serp;
    Alcotest.test_case "engine form submit" `Quick test_engine_form_submit;
    Alcotest.test_case "places drops typed referrer" `Quick test_places_drops_typed_referrer;
    Alcotest.test_case "places counts and frecency" `Quick test_places_counts_and_frecency;
    Alcotest.test_case "places hides embeds" `Quick test_places_embeds_hidden;
    Alcotest.test_case "places input history" `Quick test_places_search_goes_to_input_history;
    Alcotest.test_case "places downloads" `Quick test_places_downloads_table;
    Alcotest.test_case "places ignores closes" `Quick test_places_ignores_closes_and_tabs;
    Alcotest.test_case "history search baseline" `Quick test_history_search_matches_own_text_only;
    Alcotest.test_case "user model produces history" `Quick test_user_model_produces_history;
    Alcotest.test_case "user model deterministic" `Quick test_user_model_deterministic;
    Alcotest.test_case "user model monotone time" `Quick test_user_model_times_monotone;
    Alcotest.test_case "user model closes tabs" `Quick test_user_model_tabs_all_closed;
    Alcotest.test_case "user model ground truth" `Quick test_user_model_episode_ground_truth;
  ]
