(* Varint, Value and Codec: encode/decode round trips, exact size
   accounting, and the total order on values. *)

module R = Relstore

let value_gen : R.Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (1, return R.Value.Null);
      (4, map (fun n -> R.Value.Int n) int);
      (3, map (fun f -> R.Value.Real f) (float_bound_inclusive 1e12));
      (4, map (fun s -> R.Value.Text s) (string_size (int_bound 40)));
      (2, map (fun s -> R.Value.Blob (Bytes.of_string s)) (string_size (int_bound 24)));
      (2, map (fun b -> R.Value.Bool b) bool);
    ]

let value_arb = QCheck.make ~print:R.Value.to_string value_gen

let varint_roundtrip =
  QCheck.Test.make ~name:"varint signed roundtrip" ~count:2000 (QCheck.make QCheck.Gen.int)
    (fun n ->
      let buf = Buffer.create 10 in
      R.Varint.write_signed buf n;
      let s = Buffer.contents buf in
      let pos = ref 0 in
      let decoded = R.Varint.read_signed s pos in
      decoded = n && !pos = String.length s && String.length s = R.Varint.size_signed n)

let varint_unsigned_roundtrip =
  QCheck.Test.make ~name:"varint unsigned roundtrip" ~count:2000
    (QCheck.make QCheck.Gen.nat) (fun n ->
      let buf = Buffer.create 10 in
      R.Varint.write_unsigned buf n;
      let s = Buffer.contents buf in
      let pos = ref 0 in
      R.Varint.read_unsigned s pos = n && String.length s = R.Varint.size_unsigned n)

let zigzag_inverse =
  QCheck.Test.make ~name:"zigzag/unzigzag inverse" ~count:2000 (QCheck.make QCheck.Gen.int)
    (fun n -> R.Varint.unzigzag (R.Varint.zigzag n) = n)

let value_roundtrip =
  QCheck.Test.make ~name:"value codec roundtrip" ~count:2000 value_arb (fun v ->
      let buf = Buffer.create 32 in
      R.Codec.write_value buf v;
      let s = Buffer.contents buf in
      let pos = ref 0 in
      let decoded = R.Codec.read_value s pos in
      R.Value.equal decoded v
      && !pos = String.length s
      && String.length s = R.Value.serialized_size v)

let row_roundtrip =
  QCheck.Test.make ~name:"row codec roundtrip" ~count:500
    (QCheck.make (QCheck.Gen.array_size (QCheck.Gen.int_bound 8) value_gen)) (fun row ->
      let buf = Buffer.create 64 in
      R.Codec.write_row buf row;
      let s = Buffer.contents buf in
      let pos = ref 0 in
      let decoded = R.Codec.read_row s pos in
      Array.length decoded = Array.length row
      && Array.for_all2 R.Value.equal decoded row
      && String.length s = R.Codec.row_size row)

let compare_total_order =
  QCheck.Test.make ~name:"value compare is a total order" ~count:1000
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (R.Value.compare a b) = -sgn (R.Value.compare b a)
      && (* transitivity of <= *)
      (not (R.Value.compare a b <= 0 && R.Value.compare b c <= 0)
      || R.Value.compare a c <= 0))

let test_numeric_interleave () =
  Alcotest.(check bool) "Int vs Real numeric" true (R.Value.compare (R.Value.Int 2) (R.Value.Real 2.5) < 0);
  Alcotest.(check bool) "Real vs Int numeric" true (R.Value.compare (R.Value.Real 3.5) (R.Value.Int 3) > 0);
  Alcotest.(check bool) "equal across kinds" true (R.Value.equal (R.Value.Int 2) (R.Value.Real 2.0))

let test_null_smallest () =
  List.iter
    (fun v ->
      Alcotest.(check bool) "null below" true (R.Value.compare R.Value.Null v < 0))
    [ R.Value.Bool false; R.Value.Int min_int; R.Value.Text ""; R.Value.Blob Bytes.empty ]

let test_projections () =
  Alcotest.(check int) "to_int" 5 (R.Value.to_int (R.Value.Int 5));
  Alcotest.(check (float 0.0)) "to_real widens" 5.0 (R.Value.to_real (R.Value.Int 5));
  Alcotest.(check string) "to_text" "x" (R.Value.to_text (R.Value.Text "x"));
  Alcotest.(check bool) "to_bool" true (R.Value.to_bool (R.Value.Bool true));
  Alcotest.(check (option int)) "to_int_opt null" None (R.Value.to_int_opt R.Value.Null);
  Alcotest.(check (option string)) "to_text_opt" (Some "y") (R.Value.to_text_opt (R.Value.Text "y"))

let test_projection_errors () =
  (try
     ignore (R.Value.to_int (R.Value.Text "no"));
     Alcotest.fail "expected Type_mismatch"
   with R.Errors.Type_mismatch _ -> ());
  try
    ignore (R.Value.to_text R.Value.Null);
    Alcotest.fail "expected Type_mismatch on null"
  with R.Errors.Type_mismatch _ -> ()

let test_corrupt_decode () =
  let pos = ref 0 in
  (try
     ignore (R.Codec.read_value "\255garbage" pos);
     Alcotest.fail "expected Corrupt"
   with R.Errors.Corrupt _ -> ());
  let pos = ref 0 in
  try
    ignore (R.Codec.read_value "" pos);
    Alcotest.fail "expected Corrupt on empty"
  with R.Errors.Corrupt _ -> ()

let test_string_roundtrip () =
  let buf = Buffer.create 16 in
  R.Codec.write_string buf "hello";
  R.Codec.write_string buf "";
  let s = Buffer.contents buf in
  let pos = ref 0 in
  Alcotest.(check string) "first" "hello" (R.Codec.read_string s pos);
  Alcotest.(check string) "second empty" "" (R.Codec.read_string s pos)

let suite =
  [
    QCheck_alcotest.to_alcotest varint_roundtrip;
    QCheck_alcotest.to_alcotest varint_unsigned_roundtrip;
    QCheck_alcotest.to_alcotest zigzag_inverse;
    QCheck_alcotest.to_alcotest value_roundtrip;
    QCheck_alcotest.to_alcotest row_roundtrip;
    QCheck_alcotest.to_alcotest compare_total_order;
    Alcotest.test_case "numeric interleave" `Quick test_numeric_interleave;
    Alcotest.test_case "null smallest" `Quick test_null_smallest;
    Alcotest.test_case "projections" `Quick test_projections;
    Alcotest.test_case "projection errors" `Quick test_projection_errors;
    Alcotest.test_case "corrupt decode" `Quick test_corrupt_decode;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
  ]
