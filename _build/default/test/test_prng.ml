(* Determinism, bounds and rough distributional sanity of the PRNG. *)

module Prng = Provkit_util.Prng

let check = Alcotest.check

let test_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  check Alcotest.bool "streams differ" true !differs

let test_split_independence () =
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  (* Drawing from the child must not affect the parent's future. *)
  let parent_copy = Prng.copy parent in
  for _ = 1 to 50 do
    ignore (Prng.bits64 child)
  done;
  check Alcotest.int64 "parent unaffected by child draws" (Prng.bits64 parent_copy)
    (Prng.bits64 parent)

let test_copy () =
  let a = Prng.create 9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_int_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of bounds: %d" v
  done

let test_int_in_bounds () =
  let rng = Prng.create 6 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "int_in out of bounds: %d" v
  done

let test_int_covers_range () =
  let rng = Prng.create 8 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int rng 4) <- true
  done;
  check Alcotest.bool "all residues hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Prng.create 10 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 3.0 in
    if v < 0.0 || v >= 3.0 then Alcotest.failf "float out of bounds: %f" v
  done

let test_bernoulli_extremes () =
  let rng = Prng.create 11 in
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never" false (Prng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    check Alcotest.bool "p=1 always" true (Prng.bernoulli rng 1.0)
  done

let test_bernoulli_mean () =
  let rng = Prng.create 12 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if Float.abs (p -. 0.3) > 0.03 then Alcotest.failf "bernoulli mean off: %f" p

let test_gaussian_moments () =
  let rng = Prng.create 13 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Prng.gaussian rng ~mean:5.0 ~stddev:2.0) in
  let mean = Provkit_util.Stats.mean samples in
  let sd = Provkit_util.Stats.stddev samples in
  if Float.abs (mean -. 5.0) > 0.1 then Alcotest.failf "gaussian mean off: %f" mean;
  if Float.abs (sd -. 2.0) > 0.1 then Alcotest.failf "gaussian sd off: %f" sd

let test_exponential_mean () =
  let rng = Prng.create 14 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Prng.exponential rng 0.5) in
  let mean = Provkit_util.Stats.mean samples in
  if Float.abs (mean -. 2.0) > 0.15 then Alcotest.failf "exponential mean off: %f" mean

let test_geometric () =
  let rng = Prng.create 15 in
  check Alcotest.int "p=1 is always 0" 0 (Prng.geometric rng 1.0);
  let samples = List.init 10_000 (fun _ -> float_of_int (Prng.geometric rng 0.5)) in
  let mean = Provkit_util.Stats.mean samples in
  (* mean of Geom(0.5) failures = (1-p)/p = 1 *)
  if Float.abs (mean -. 1.0) > 0.1 then Alcotest.failf "geometric mean off: %f" mean

let test_pick () =
  let rng = Prng.create 16 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let v = Prng.pick rng arr in
    check Alcotest.bool "picked element" true (Array.exists (String.equal v) arr)
  done

let test_pick_list_empty () =
  let rng = Prng.create 17 in
  Alcotest.check_raises "empty list rejected" (Invalid_argument "Prng.pick_list: empty list")
    (fun () -> ignore (Prng.pick_list rng []))

let test_weighted_index () =
  let rng = Prng.create 18 in
  let w = [| 0.0; 10.0; 0.0 |] in
  for _ = 1 to 200 do
    check Alcotest.int "all mass on index 1" 1 (Prng.weighted_index rng w)
  done

let test_weighted_index_proportions () =
  let rng = Prng.create 19 in
  let w = [| 1.0; 3.0 |] in
  let counts = Array.make 2 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Prng.weighted_index rng w in
    counts.(i) <- counts.(i) + 1
  done;
  let p1 = float_of_int counts.(1) /. float_of_int n in
  if Float.abs (p1 -. 0.75) > 0.02 then Alcotest.failf "weighted proportion off: %f" p1

let test_shuffle_permutation () =
  let rng = Prng.create 20 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Prng.create 21 in
  let arr = Array.init 20 Fun.id in
  let sample = Prng.sample_without_replacement rng 8 arr in
  check Alcotest.int "size" 8 (List.length sample);
  check Alcotest.int "distinct" 8 (List.length (List.sort_uniq Int.compare sample));
  let all = Prng.sample_without_replacement rng 100 arr in
  check Alcotest.int "capped at population" 20 (List.length all);
  check (Alcotest.list Alcotest.int) "empty sample" [] (Prng.sample_without_replacement rng 0 arr)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli mean" `Quick test_bernoulli_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "geometric" `Quick test_geometric;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "pick_list empty" `Quick test_pick_list_empty;
    Alcotest.test_case "weighted_index degenerate" `Quick test_weighted_index;
    Alcotest.test_case "weighted_index proportions" `Quick test_weighted_index_proportions;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
  ]
