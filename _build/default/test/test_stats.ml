module Stats = Provkit_util.Stats

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "empty" 0.0 (Stats.mean []);
  Alcotest.check feq "singleton" 4.0 (Stats.mean [ 4.0 ]);
  Alcotest.check feq "average" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ])

let test_stddev () =
  Alcotest.check feq "empty" 0.0 (Stats.stddev []);
  Alcotest.check feq "singleton" 0.0 (Stats.stddev [ 7.0 ]);
  Alcotest.check feq "constant" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  (* population sd of 2,4,4,4,5,5,7,9 is exactly 2 *)
  Alcotest.check feq "known value" 2.0
    (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.check feq "p0 = min" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.check feq "p100 = max" 5.0 (Stats.percentile 100.0 xs);
  Alcotest.check feq "p50 = median" 3.0 (Stats.percentile 50.0 xs);
  Alcotest.check feq "interpolated" 1.5 (Stats.percentile 12.5 xs);
  Alcotest.check feq "unsorted input ok" 3.0 (Stats.percentile 50.0 [ 5.0; 1.0; 3.0; 2.0; 4.0 ])

let test_percentile_empty () =
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile 50.0 []))

let test_summarize () =
  let s = Stats.summarize [ 10.0; 20.0; 30.0 ] in
  Alcotest.check Alcotest.int "count" 3 s.Stats.count;
  Alcotest.check feq "min" 10.0 s.Stats.min;
  Alcotest.check feq "max" 30.0 s.Stats.max;
  Alcotest.check feq "mean" 20.0 s.Stats.mean;
  Alcotest.check feq "p50" 20.0 s.Stats.p50

let test_summarize_monotone_percentiles () =
  let rng = Provkit_util.Prng.create 33 in
  let xs = List.init 500 (fun _ -> Provkit_util.Prng.float rng 100.0) in
  let s = Stats.summarize xs in
  Alcotest.check Alcotest.bool "p50<=p90<=p99<=max" true
    (s.Stats.p50 <= s.Stats.p90 && s.Stats.p90 <= s.Stats.p99 && s.Stats.p99 <= s.Stats.max);
  Alcotest.check Alcotest.bool "min<=p50" true (s.Stats.min <= s.Stats.p50)

let test_histogram () =
  let h = Stats.histogram ~buckets:[ 10.0; 20.0 ] [ 1.0; 5.0; 15.0; 25.0; 100.0 ] in
  match h with
  | [ (b1, c1); (b2, c2); (binf, cinf) ] ->
    Alcotest.check feq "bucket 1 bound" 10.0 b1;
    Alcotest.check Alcotest.int "bucket 1 count" 2 c1;
    Alcotest.check feq "bucket 2 bound" 20.0 b2;
    Alcotest.check Alcotest.int "bucket 2 count" 1 c2;
    Alcotest.check Alcotest.bool "last bucket infinite" true (binf = infinity);
    Alcotest.check Alcotest.int "overflow count" 2 cinf
  | _ -> Alcotest.fail "unexpected histogram shape"

let test_histogram_total () =
  let xs = List.init 100 (fun i -> float_of_int i) in
  let h = Stats.histogram ~buckets:[ 25.0; 50.0; 75.0 ] xs in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.check Alcotest.int "every sample lands somewhere" 100 total

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "percentiles monotone" `Quick test_summarize_monotone_percentiles;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram conserves mass" `Quick test_histogram_total;
  ]
