(* Provenance-preserving expiration: old visit instances go, page-level
   reachability stays. *)

module F = Core_fixtures
module Engine = Browser.Engine
module Store = Core.Prov_store
module R = Core.Retention

(* An old session that downloads a file, then a much later session. *)
let build_history () =
  let web, engine, api = F.make ~seed:91 () in
  let host = F.first_of_kind web Webmodel.Page_content.Download_host in
  let hub = F.hub web in
  let tab = Engine.open_tab engine ~time:1000 () in
  let _ = Engine.visit_typed engine ~time:1000 ~tab hub in
  let _ = Engine.visit_link engine ~time:1100 ~tab host in
  let file = F.file_of_host web host in
  let download_id, _ = Engine.download engine ~time:1200 ~tab ~file_page:file in
  Engine.close_tab engine ~time:1300 tab;
  let tab2 = Engine.open_tab engine ~time:900_000 () in
  let recent = Engine.visit_typed engine ~time:900_000 ~tab:tab2 (F.article web) in
  Engine.close_tab engine ~time:900_100 tab2;
  (web, api, hub, host, download_id, recent)

let page_node api web p =
  Option.get
    (Store.page_of_url (Core.Api.store api)
       (Webmodel.Url.to_string (Webmodel.Web_graph.page web p).Webmodel.Page_content.url))

let test_expire_drops_old_visits_keeps_anchors () =
  let web, api, _hub, _host, download_id, recent = build_history () in
  let store = Core.Api.store api in
  let before = Store.node_count store in
  let r = R.expire ~cutoff:500_000 store in
  Alcotest.(check bool) "visits expired" true (r.R.expired_visits > 0);
  Alcotest.(check int) "kept = before - expired" (before - r.R.expired_visits) r.R.kept_nodes;
  Alcotest.(check int) "store matches" r.R.kept_nodes (Store.node_count r.R.store);
  (* Anchors survive: pages, the download node, the recent visit. *)
  Alcotest.(check bool) "download kept" true
    (Store.node_opt r.R.store (Option.get (Store.download_node store download_id)) <> None);
  let recent_node = Option.get (Store.visit_node store recent.Engine.visit_id) in
  Alcotest.(check bool) "recent visit kept" true (Store.node_opt r.R.store recent_node <> None);
  ignore web

let test_expire_preserves_descendant_reachability () =
  let web, api, hub, _host, download_id, _recent = build_history () in
  let store = Core.Api.store api in
  let dnode = Option.get (Store.download_node store download_id) in
  let hub_page = page_node api web hub in
  (* Before expiry the download descends from the session's hub page. *)
  let before = Core.Lineage.downloads_descending store hub_page in
  Alcotest.(check (list int)) "descends before" [ dnode ] before.Core.Lineage.downloads;
  (* After expiring every visit of that era, the summary edges keep the
     page-level lineage alive. *)
  let r = R.expire ~cutoff:500_000 store in
  let after = Core.Lineage.downloads_descending r.R.store hub_page in
  Alcotest.(check (list int)) "still descends after expiry" [ dnode ]
    after.Core.Lineage.downloads;
  Alcotest.(check bool) "summaries were created" true (r.R.summary_edges > 0)

let test_expire_keeps_recent_era_verbatim () =
  let _web, _engine, api, trace = F.simulated ~seed:92 ~days:2 () in
  let store = Core.Api.store api in
  ignore trace;
  (* Cutoff before everything: nothing expires, graph is identical. *)
  let r = R.expire ~cutoff:0 store in
  Alcotest.(check int) "no visits expired" 0 r.R.expired_visits;
  Alcotest.(check int) "nodes identical" (Store.node_count store) (Store.node_count r.R.store);
  Alcotest.(check int) "edges identical" (Store.edge_count store) (Store.edge_count r.R.store)

let test_expire_everything_leaves_projection () =
  let _web, _engine, api, _trace = F.simulated ~seed:93 ~days:1 () in
  let store = Core.Api.store api in
  let r = R.expire ~cutoff:max_int store in
  (* No visit instances remain... *)
  Alcotest.(check (list int)) "no visits left" []
    (Store.nodes_of_kind r.R.store Core.Prov_node.is_visit);
  (* ...but pages and the summarized structure do. *)
  Alcotest.(check bool) "pages survive" true
    (Store.nodes_of_kind r.R.store Core.Prov_node.is_page <> []);
  Alcotest.(check bool) "summary structure present" true (r.R.summary_edges > 0);
  Alcotest.(check bool) "result acyclic?" true
    (* The fully summarized store is the page projection and may be
       cyclic — exactly the S3.1 trade-off; assert it loads and walks. *)
    (Store.node_count r.R.store > 0)

let test_summarized_page_edges_exposed () =
  let web, api, hub, host, _download_id, _recent = build_history () in
  let store = Core.Api.store api in
  let pairs = R.summarized_page_edges ~cutoff:500_000 store in
  let hub_page = page_node api web hub and host_page = page_node api web host in
  Alcotest.(check bool) "hub->host summary present" true
    (List.exists (fun (s, d, _) -> s = hub_page && d = host_page) pairs);
  (* Summary keeps the earliest action time. *)
  List.iter (fun (_, _, t) -> Alcotest.(check bool) "old era times" true (t < 500_000)) pairs

let test_expired_store_persists () =
  let _web, _engine, api, _trace = F.simulated ~seed:94 ~days:1 () in
  let store = Core.Api.store api in
  let r = R.expire ~cutoff:43_200 store in
  let db = Core.Prov_schema.to_database r.R.store in
  let reloaded = Core.Prov_schema.of_database db in
  Alcotest.(check int) "expired store round trips" (Store.node_count r.R.store)
    (Store.node_count reloaded);
  Alcotest.(check bool) "smaller than the original image" true
    (Relstore.Database.total_size db
    < Relstore.Database.total_size (Core.Prov_schema.to_database store))

let suite =
  [
    Alcotest.test_case "drops old, keeps anchors" `Quick test_expire_drops_old_visits_keeps_anchors;
    Alcotest.test_case "descendants survive expiry" `Quick test_expire_preserves_descendant_reachability;
    Alcotest.test_case "cutoff 0 is identity" `Quick test_expire_keeps_recent_era_verbatim;
    Alcotest.test_case "full expiry leaves projection" `Quick test_expire_everything_leaves_projection;
    Alcotest.test_case "summaries exposed" `Quick test_summarized_page_edges_exposed;
    Alcotest.test_case "expired store persists" `Quick test_expired_store_persists;
  ]
