(* The SQL-ish query language: lexing/parsing, execution through the
   planner, errors, and agreement with programmatic queries. *)

module R = Relstore

let db_fixture () =
  let db = R.Database.create ~name:"sqltest" in
  let schema =
    R.Schema.make ~name:"wines"
      [
        R.Column.make "name" R.Value.Ttext;
        R.Column.make "year" R.Value.Tint;
        R.Column.make "rating" R.Value.Treal;
        R.Column.make ~nullable:true "note" R.Value.Ttext;
        R.Column.make "sparkling" R.Value.Tbool;
      ]
  in
  let t = R.Database.create_table db schema in
  R.Table.add_index t ~name:"wines_year" ~columns:[ "year" ];
  List.iter
    (fun (name, year, rating, note, sparkling) ->
      ignore
        (R.Table.insert_fields t
           [
             ("name", R.Value.Text name);
             ("year", R.Value.Int year);
             ("rating", R.Value.Real rating);
             ("note", (match note with None -> R.Value.Null | Some s -> R.Value.Text s));
             ("sparkling", R.Value.Bool sparkling);
           ]))
    [
      ("margaux", 2015, 4.5, Some "big Tannins", false);
      ("riesling", 2019, 4.0, None, false);
      ("cava", 2019, 3.5, Some "festive", true);
      ("barolo", 2011, 4.8, Some "tar and roses", false);
      ("txakoli", 2021, 3.9, None, true);
    ];
  db

let names (r : R.Sql.result) =
  List.map
    (function R.Value.Text s :: _ -> s | _ -> "?")
    r.R.Sql.rows

let test_select_all () =
  let db = db_fixture () in
  let r = R.Sql.query db "SELECT * FROM wines" in
  Alcotest.(check int) "five rows" 5 (List.length r.R.Sql.rows);
  Alcotest.(check (list string)) "rowid first column" [ "rowid"; "name"; "year"; "rating"; "note"; "sparkling" ]
    r.R.Sql.columns

let test_projection () =
  let db = db_fixture () in
  let r = R.Sql.query db "SELECT name, year FROM wines LIMIT 2" in
  Alcotest.(check (list string)) "columns" [ "name"; "year" ] r.R.Sql.columns;
  Alcotest.(check int) "limit" 2 (List.length r.R.Sql.rows)

let test_where_and_order () =
  let db = db_fixture () in
  let r =
    R.Sql.query db
      "SELECT name FROM wines WHERE year = 2019 ORDER BY rating DESC"
  in
  Alcotest.(check (list string)) "2019 wines by rating" [ "riesling"; "cava" ] (names r)

let test_comparisons () =
  let db = db_fixture () in
  let q s = List.length (R.Sql.query db s).R.Sql.rows in
  Alcotest.(check int) "gt" 3 (q "SELECT * FROM wines WHERE year > 2015");
  Alcotest.(check int) "ge" 4 (q "SELECT * FROM wines WHERE year >= 2015");
  Alcotest.(check int) "ne" 4 (q "SELECT * FROM wines WHERE name <> 'cava'");
  Alcotest.(check int) "float cmp" 2 (q "SELECT * FROM wines WHERE rating >= 4.5");
  Alcotest.(check int) "bool eq" 2 (q "SELECT * FROM wines WHERE sparkling = TRUE");
  Alcotest.(check int) "between" 3 (q "SELECT * FROM wines WHERE year BETWEEN 2015 AND 2020")

let test_null_and_like () =
  let db = db_fixture () in
  let q s = names (R.Sql.query db s) in
  Alcotest.(check (list string)) "is null" [ "riesling"; "txakoli" ]
    (q "SELECT name FROM wines WHERE note IS NULL");
  Alcotest.(check (list string)) "is not null" [ "margaux"; "cava"; "barolo" ]
    (q "SELECT name FROM wines WHERE note IS NOT NULL");
  Alcotest.(check (list string)) "like is case-insensitive contains" [ "margaux" ]
    (q "SELECT name FROM wines WHERE note LIKE 'tannins'")

let test_boolean_connectives () =
  let db = db_fixture () in
  let q s = names (R.Sql.query db s) in
  Alcotest.(check (list string)) "and" [ "cava" ]
    (q "SELECT name FROM wines WHERE year = 2019 AND sparkling = TRUE");
  Alcotest.(check (list string)) "or" [ "margaux"; "barolo" ]
    (q "SELECT name FROM wines WHERE year = 2015 OR year = 2011");
  Alcotest.(check (list string)) "not" [ "margaux"; "riesling"; "barolo" ]
    (q "SELECT name FROM wines WHERE NOT sparkling = TRUE");
  (* AND binds tighter than OR. *)
  Alcotest.(check (list string)) "precedence" [ "margaux"; "cava" ]
    (q "SELECT name FROM wines WHERE year = 2015 OR year = 2019 AND sparkling = TRUE");
  Alcotest.(check (list string)) "parens override" [ "riesling"; "cava" ]
    (q "SELECT name FROM wines WHERE (year = 2015 OR year = 2019) AND year > 2016")

let test_count () =
  let db = db_fixture () in
  match (R.Sql.query db "SELECT COUNT(*) FROM wines WHERE sparkling = FALSE").R.Sql.rows with
  | [ [ R.Value.Int 3 ] ] -> ()
  | _ -> Alcotest.fail "count wrong"

let test_aggregates () =
  let db = db_fixture () in
  let one s =
    match (R.Sql.query db s).R.Sql.rows with
    | [ [ v ] ] -> v
    | _ -> Alcotest.failf "expected one cell from %s" s
  in
  (match one "SELECT SUM(year) FROM wines" with
  | R.Value.Real total -> Alcotest.(check (float 1e-9)) "sum" 10085.0 total
  | _ -> Alcotest.fail "sum kind");
  (match one "SELECT AVG(rating) FROM wines" with
  | R.Value.Real avg -> Alcotest.(check (float 1e-9)) "avg" 4.14 avg
  | _ -> Alcotest.fail "avg kind");
  Alcotest.(check bool) "min" true (one "SELECT MIN(year) FROM wines" = R.Value.Int 2011);
  Alcotest.(check bool) "max" true (one "SELECT MAX(year) FROM wines" = R.Value.Int 2021);
  (* NULLs are skipped; empty input yields NULL. *)
  Alcotest.(check bool) "min over notes skips nulls" true
    (one "SELECT MIN(note) FROM wines" = R.Value.Text "big Tannins");
  Alcotest.(check bool) "avg of nothing" true
    (one "SELECT AVG(rating) FROM wines WHERE year = 1900" = R.Value.Null)

let test_group_by () =
  let db = db_fixture () in
  let r = R.Sql.query db "SELECT year, COUNT(*) FROM wines GROUP BY year" in
  Alcotest.(check (list string)) "columns" [ "year"; "count" ] r.R.Sql.columns;
  (match r.R.Sql.rows with
  | [ R.Value.Int 2019; R.Value.Int 2 ] :: rest ->
    Alcotest.(check int) "remaining groups" 3 (List.length rest)
  | _ -> Alcotest.fail "expected 2019 group first");
  let limited =
    R.Sql.query db "SELECT year, COUNT(*) FROM wines WHERE sparkling = FALSE GROUP BY year LIMIT 2"
  in
  Alcotest.(check int) "limit applies to groups" 2 (List.length limited.R.Sql.rows)

let test_group_by_errors () =
  let bad input =
    try
      ignore (R.Sql.parse input);
      Alcotest.failf "accepted %S" input
    with R.Sql.Parse_error _ -> ()
  in
  bad "SELECT name FROM wines GROUP BY year";
  bad "SELECT year, COUNT(*) FROM wines GROUP BY year ORDER BY year";
  bad "SELECT SUM(year), name FROM wines"

let test_string_escaping () =
  let db = db_fixture () in
  let t = R.Database.table db "wines" in
  let _ =
    R.Table.insert_fields t
      [
        ("name", R.Value.Text "l'etoile");
        ("year", R.Value.Int 2000);
        ("rating", R.Value.Real 4.0);
        ("note", R.Value.Null);
        ("sparkling", R.Value.Bool false);
      ]
  in
  Alcotest.(check int) "escaped quote matches" 1
    (List.length (R.Sql.query db "SELECT * FROM wines WHERE name = 'l''etoile'").R.Sql.rows)

let test_explain_uses_planner () =
  let db = db_fixture () in
  Alcotest.(check string) "eq via index" "index wines_year (eq)"
    (R.Sql.explain db "SELECT * FROM wines WHERE year = 2019");
  Alcotest.(check string) "range via index" "index wines_year (range)"
    (R.Sql.explain db "SELECT * FROM wines WHERE year BETWEEN 2012 AND 2020");
  Alcotest.(check string) "scan otherwise" "full scan"
    (R.Sql.explain db "SELECT * FROM wines WHERE rating > 4.0")

let test_sql_agrees_with_programmatic () =
  let db = db_fixture () in
  let t = R.Database.table db "wines" in
  let sql = R.Sql.query db "SELECT name FROM wines WHERE year >= 2015 ORDER BY year" in
  let prog =
    R.Query_exec.select
      ~where:(R.Predicate.Cmp (R.Predicate.Ge, "year", R.Value.Int 2015))
      ~order_by:[ R.Query_exec.Asc "year" ] t
  in
  Alcotest.(check (list string)) "same answers"
    (List.map (fun (_, row) -> R.Value.to_text row.(0)) prog)
    (names sql)

let test_parse_errors () =
  let bad input =
    try
      ignore (R.Sql.parse input);
      Alcotest.failf "accepted %S" input
    with R.Sql.Parse_error _ -> ()
  in
  bad "";
  bad "SELEC * FROM t";
  bad "SELECT FROM t";
  bad "SELECT * FROM t WHERE";
  bad "SELECT * FROM t WHERE x ==";
  bad "SELECT * FROM t LIMIT 'two'";
  bad "SELECT * FROM t WHERE name LIKE 42";
  bad "SELECT * FROM t extra";
  bad "SELECT * FROM t WHERE name = 'unterminated"

let test_execution_errors () =
  let db = db_fixture () in
  (try
     ignore (R.Sql.query db "SELECT * FROM missing");
     Alcotest.fail "missing table accepted"
   with R.Errors.No_such_table _ -> ());
  try
    ignore (R.Sql.query db "SELECT * FROM wines WHERE ghost = 1");
    Alcotest.fail "missing column accepted"
  with R.Errors.No_such_column _ -> ()

let test_render () =
  let db = db_fixture () in
  let out = R.Sql.render (R.Sql.query db "SELECT name, year FROM wines LIMIT 1") in
  Alcotest.(check bool) "has header" true
    (Provkit_util.Strutil.contains_substring ~needle:"name" out);
  Alcotest.(check bool) "has value" true
    (Provkit_util.Strutil.contains_substring ~needle:"margaux" out)

let test_query_over_provenance_image () =
  (* End to end: SQL over the persisted provenance schema. *)
  let _web, _engine, api, _trace = Core_fixtures.simulated ~seed:61 ~days:1 () in
  let db = Core.Api.persist api in
  let downloads = R.Sql.query db "SELECT COUNT(*) FROM prov_node WHERE kind = 3" in
  (match downloads.R.Sql.rows with
  | [ [ R.Value.Int n ] ] -> Alcotest.(check bool) "download nodes countable" true (n >= 0)
  | _ -> Alcotest.fail "bad count shape");
  let recent =
    R.Sql.query db "SELECT label FROM prov_node WHERE kind = 4 ORDER BY time DESC LIMIT 5"
  in
  Alcotest.(check bool) "search terms queryable" true (List.length recent.R.Sql.rows <= 5)

let suite =
  [
    Alcotest.test_case "select all" `Quick test_select_all;
    Alcotest.test_case "projection" `Quick test_projection;
    Alcotest.test_case "where + order" `Quick test_where_and_order;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "null and like" `Quick test_null_and_like;
    Alcotest.test_case "boolean connectives" `Quick test_boolean_connectives;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "group by errors" `Quick test_group_by_errors;
    Alcotest.test_case "string escaping" `Quick test_string_escaping;
    Alcotest.test_case "explain" `Quick test_explain_uses_planner;
    Alcotest.test_case "agrees with programmatic" `Quick test_sql_agrees_with_programmatic;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "execution errors" `Quick test_execution_errors;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "sql over provenance image" `Quick test_query_over_provenance_image;
  ]
