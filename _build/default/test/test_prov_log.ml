(* The append-only provenance journal: op codec, recording, replay,
   crash truncation, compaction, and qcheck round trips. *)

module PL = Core.Prov_log
module PN = Core.Prov_node
module PE = Core.Prov_edge
module Store = Core.Prov_store
module F = Core_fixtures
module Transition = Browser.Transition

let sample_ops =
  [
    PL.Add_node
      {
        PN.id = 1;
        kind = PN.Page { url = "http://x/1"; title = "One" };
        time = Some 10;
        close_time = None;
      };
    PL.Add_node
      {
        PN.id = 2;
        kind = PN.Visit { url = "http://x/1"; title = "One"; transition = Transition.Typed; tab = 3 };
        time = Some 11;
        close_time = Some 40;
      };
    PL.Add_node
      {
        PN.id = 3;
        kind = PN.Form_submission { fields = [ ("q", "wine"); ("lang", "en") ] };
        time = Some 12;
        close_time = None;
      };
    PL.Add_node
      { PN.id = 4; kind = PN.Search_term { query = "rosebud" }; time = Some 13; close_time = None };
    PL.Add_node
      {
        PN.id = 5;
        kind = PN.Download { source_url = "http://x/f.zip"; target_path = "/tmp/f.zip" };
        time = Some 14;
        close_time = None;
      };
    PL.Add_edge { src = 1; dst = 2; edge = { PE.kind = PE.Instance; time = 11 } };
    PL.Add_edge { src = 2; dst = 5; edge = { PE.kind = PE.Download_source; time = 14 } };
    PL.Close_node { id = 2; time = 41 };
  ]

let test_op_codec_roundtrip () =
  let buf = Buffer.create 256 in
  List.iter (PL.encode_op buf) sample_ops;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  List.iter
    (fun expected ->
      let decoded = PL.decode_op s pos in
      Alcotest.(check bool) "op round trips" true (decoded = expected))
    sample_ops;
  Alcotest.(check int) "fully consumed" (String.length s) !pos

let test_journal_bytes_roundtrip () =
  let j = PL.create () in
  List.iter (PL.append j) sample_ops;
  Alcotest.(check int) "length" (List.length sample_ops) (PL.length j);
  let j' = PL.of_bytes (PL.to_bytes j) in
  Alcotest.(check bool) "ops preserved" true (PL.ops j' = sample_ops);
  Alcotest.(check int) "byte size stable" (PL.byte_size j) (PL.byte_size j')

let test_truncation_tolerated () =
  let j = PL.create () in
  List.iter (PL.append j) sample_ops;
  let bytes = PL.to_bytes j in
  (* Chop mid-final-record: replay keeps the intact prefix. *)
  let cut = PL.of_bytes (String.sub bytes 0 (String.length bytes - 2)) in
  Alcotest.(check int) "one record lost" (List.length sample_ops - 1) (PL.length cut);
  (* Strict mode raises instead. *)
  Alcotest.(check bool) "strict raises" true
    (try
       ignore (PL.of_bytes ~tolerate_truncation:false (String.sub bytes 0 (String.length bytes - 2)));
       false
     with Relstore.Errors.Corrupt _ -> true)

let test_bad_magic () =
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (PL.of_bytes "NOTALOG");
       false
     with Relstore.Errors.Corrupt _ -> true)

let test_recording_and_replay () =
  let store, journal = PL.recording_store () in
  let page = Store.add_page store ~url:"http://a" ~title:"A" ~time:1 in
  let visit =
    Store.add_visit store ~engine_visit:7 ~url:"http://a" ~title:"A"
      ~transition:Transition.Link ~tab:1 ~time:2
  in
  Store.add_edge store ~src:page ~dst:visit PE.Same_time ~time:2;
  Store.close_visit store ~engine_visit:7 ~time:9;
  let replayed = PL.replay journal in
  Alcotest.(check int) "nodes" (Store.node_count store) (Store.node_count replayed);
  Alcotest.(check int) "edges" (Store.edge_count store) (Store.edge_count replayed);
  Alcotest.(check (option int)) "close time survives" (Some 9)
    (Store.node replayed visit).PN.close_time;
  Alcotest.(check (option int)) "url lookup rebuilt" (Some page)
    (Store.page_of_url replayed "http://a")

let test_journal_under_full_capture () =
  (* Wire a journal into a live capture and compare the replay to the
     capture's own store after simulated browsing. *)
  let capture, feed = Core.Capture.observer () in
  let journal = PL.create () in
  Store.set_observer (Core.Capture.store capture) (fun m ->
      PL.append journal
        (match m with
        | Store.M_node n -> PL.Add_node n
        | Store.M_edge (src, dst, edge) -> PL.Add_edge { src; dst; edge }
        | Store.M_close (id, time) -> PL.Close_node { id; time }));
  let _web, engine, _api, _trace = F.simulated ~seed:31 ~days:1 () in
  List.iter feed (Browser.Engine.event_log engine);
  let original = Core.Capture.store capture in
  let replayed = PL.replay journal in
  Alcotest.(check int) "node parity" (Store.node_count original) (Store.node_count replayed);
  Alcotest.(check int) "edge parity" (Store.edge_count original) (Store.edge_count replayed);
  Alcotest.(check bool) "replayed store still acyclic" true
    (Core.Versioning.is_acyclic replayed)

let test_save_load_file () =
  let j = PL.create () in
  List.iter (PL.append j) sample_ops;
  let path = Filename.temp_file "provlog_test" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      PL.save j ~path;
      let j' = PL.load ~path in
      Alcotest.(check int) "ops survive disk" (PL.length j) (PL.length j'))

let test_compact () =
  let store, journal = PL.recording_store () in
  let _ = Store.add_page store ~url:"http://a" ~title:"A" ~time:1 in
  let snapshot, fresh = PL.compact store in
  Alcotest.(check int) "fresh journal empty" 0 (PL.length fresh);
  let restored = Core.Prov_schema.of_database snapshot in
  Alcotest.(check int) "snapshot holds the store" (Store.node_count store)
    (Store.node_count restored);
  ignore journal

let op_gen : PL.op QCheck.Gen.t =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range 'a' 'z') (int_range 0 12) in
  let node_kind =
    frequency
      [
        (2, map2 (fun u t -> PN.Page { url = u; title = t }) str str);
        ( 2,
          map3
            (fun u t tab ->
              PN.Visit { url = u; title = t; transition = Transition.Link; tab })
            str str (int_bound 5) );
        (1, map (fun q -> PN.Search_term { query = q }) str);
        (1, map2 (fun s p -> PN.Download { source_url = s; target_path = p }) str str);
        ( 1,
          map2
            (fun k v -> PN.Form_submission { fields = [ (k, v) ] })
            str str );
      ]
  in
  frequency
    [
      ( 3,
        map3
          (fun id kind time ->
            PL.Add_node { PN.id; kind; time = Some time; close_time = None })
          (int_bound 1000) node_kind (int_bound 100000) );
      ( 2,
        map3
          (fun src dst time ->
            PL.Add_edge { src; dst; edge = { PE.kind = PE.Link_traversal; time } })
          (int_bound 1000) (int_bound 1000) (int_bound 100000) );
      (1, map2 (fun id time -> PL.Close_node { id; time }) (int_bound 1000) (int_bound 100000));
    ]

let prop_random_ops_roundtrip =
  QCheck.Test.make ~name:"random op sequences round trip" ~count:100
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 30) op_gen)) (fun ops ->
      let j = PL.create () in
      List.iter (PL.append j) ops;
      PL.ops (PL.of_bytes (PL.to_bytes j)) = ops)

let prop_any_truncation_recovers_prefix =
  QCheck.Test.make ~name:"any truncation point yields a clean prefix" ~count:60
    (QCheck.make QCheck.Gen.(pair (int_bound 30) (int_bound 1000))) (fun (n_ops, cut) ->
      let j = PL.create () in
      let ops = List.filteri (fun i _ -> i < max 1 n_ops) sample_ops in
      List.iter (PL.append j) ops;
      List.iter (PL.append j) ops;
      let bytes = PL.to_bytes j in
      let keep = max 8 (String.length bytes - (cut mod String.length bytes)) in
      let recovered = PL.of_bytes (String.sub bytes 0 keep) in
      PL.length recovered <= PL.length j
      &&
      (* The recovered prefix must itself re-encode to a prefix of the
         original bytes. *)
      let rbytes = PL.to_bytes recovered in
      String.length rbytes <= String.length bytes
      && String.sub bytes 0 (String.length rbytes) = rbytes)

let suite =
  [
    Alcotest.test_case "op codec roundtrip" `Quick test_op_codec_roundtrip;
    Alcotest.test_case "journal bytes roundtrip" `Quick test_journal_bytes_roundtrip;
    Alcotest.test_case "truncation tolerated" `Quick test_truncation_tolerated;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "recording and replay" `Quick test_recording_and_replay;
    Alcotest.test_case "journal under capture" `Quick test_journal_under_full_capture;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
    Alcotest.test_case "compact" `Quick test_compact;
    QCheck_alcotest.to_alcotest prop_random_ops_roundtrip;
    QCheck_alcotest.to_alcotest prop_any_truncation_recovers_prefix;
  ]
