examples/download_lineage.ml: Browser Core Harness List Printf Webmodel
