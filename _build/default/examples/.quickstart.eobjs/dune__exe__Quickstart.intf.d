examples/quickstart.mli:
