examples/wine_and_tickets.ml: Browser Core List Printf Provkit_util Webmodel
