examples/rosebud.mli:
