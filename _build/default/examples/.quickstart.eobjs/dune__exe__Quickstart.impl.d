examples/quickstart.ml: Array Browser Core Format List Printf Relstore Webmodel
