examples/wine_and_tickets.mli:
