examples/download_lineage.mli:
