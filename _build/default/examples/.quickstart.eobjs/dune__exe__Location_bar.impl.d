examples/location_bar.ml: Browser Core List Option Printf Provkit_util String Webmodel
