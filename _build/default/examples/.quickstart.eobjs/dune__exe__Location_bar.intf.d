examples/location_bar.mli:
