examples/rosebud.ml: Array Browser Core Int List Printf Provkit_util String Webmodel
