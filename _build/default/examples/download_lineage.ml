(* S2.4: download lineage.

   After weeks of simulated browsing, pick a download and ask the two
   questions the paper poses: "how did I get this file?" (first
   recognizable ancestor, with the action path) and "what else did I
   download from that page?" (descendant downloads of an untrusted
   page).

   Run with: dune exec examples/download_lineage.exe *)

module UM = Browser.User_model

let () =
  (* Three simulated weeks of browsing with provenance capture. *)
  let ds = Harness.Dataset.with_days ~seed:1009 21 in
  let store = Harness.Dataset.store ds in
  let trace = ds.Harness.Dataset.trace in
  Printf.printf "simulated %d days: %d provenance nodes, %d downloads\n"
    trace.UM.span_days
    (Core.Prov_store.node_count store)
    (List.length trace.UM.downloads);

  match trace.UM.downloads with
  | [] -> print_endline "the simulated user downloaded nothing; try another seed"
  | episode :: _ ->
    let download_node =
      match Core.Prov_store.download_node store episode.UM.download_id with
      | Some n -> n
      | None -> failwith "download missing from the provenance store"
    in
    Printf.printf "\nsuspicious file: %s\n"
      (Core.Prov_node.display (Core.Prov_store.node store download_node));

    (* Question 1: where did this come from? *)
    print_endline "\n\"Find the first ancestor of this file that I would recognize\":";
    (match Core.Lineage.first_recognizable store download_node with
    | None -> print_endline "  lineage exhausted without a recognizable page"
    | Some origin ->
      Printf.printf "  recognized origin (%d hops back): %s\n" origin.Core.Lineage.distance
        (Core.Prov_node.display (Core.Prov_store.node store origin.Core.Lineage.node));
      print_endline "  the path of actions that led to the file:";
      List.iter
        (fun line -> Printf.printf "    %s\n" line)
        (Core.Lineage.describe_path store origin.Core.Lineage.path));

    (* Question 2: the host page is untrusted - what else came from it? *)
    let host_page = episode.UM.host_page in
    let host_url =
      Webmodel.Url.to_string
        (Webmodel.Web_graph.page ds.Harness.Dataset.web host_page).Webmodel.Page_content.url
    in
    Printf.printf "\n\"%s is untrusted - find all downloads descending from it\":\n" host_url;
    let result = Core.Api.downloads_from_page ds.Harness.Dataset.api ~url:host_url in
    List.iter
      (fun node ->
        Printf.printf "  %s\n" (Core.Prov_node.display (Core.Prov_store.node store node)))
      result.Core.Lineage.downloads;
    Printf.printf "  (%d nodes explored%s)\n" result.Core.Lineage.visited
      (if result.Core.Lineage.truncated then ", truncated by budget" else "");

    (* The same query under the paper's 200ms bound. *)
    let bounded =
      Core.Lineage.downloads_descending ~budget:Core.Query_budget.paper_default store
        (match Core.Prov_store.page_of_url store host_url with
        | Some p -> p
        | None -> failwith "host page missing")
    in
    Printf.printf "  bounded to 200ms: %d downloads in %.1f ms%s\n"
      (List.length bounded.Core.Lineage.downloads)
      bounded.Core.Lineage.elapsed_ms
      (if bounded.Core.Lineage.truncated then " (truncated)" else "")
