(* The smart location bar, before and after provenance (S1 + S2.2).

   The same user history; the same half-typed word; two suggestion
   engines.  The baseline awesome bar ranks by frecency, so the globally
   popular sense of an ambiguous word always wins.  The provenance-aware
   engine also looks at what is on screen *right now* and boosts graph
   neighbors of the current context — so while she is reading gardening
   pages, "rose..." means her gardening rosebud page.

   Run with: dune exec examples/location_bar.exe *)

module Web = Webmodel.Web_graph
module Engine = Browser.Engine

let () =
  let web = Web.generate ~seed:77 () in
  let search_engine = Webmodel.Search_engine.build web in
  let engine = Engine.create ~web ~search:search_engine () in
  let prov = Core.Api.attach engine in
  let ambiguity = List.hd (Web.ambiguities web) in
  let name_of ti = Webmodel.Topic.name (Web.topic web ti) in
  Printf.printf "ambiguous word: %S (%s vs %s)\n" ambiguity.Web.term
    (name_of ambiguity.Web.topic_a) (name_of ambiguity.Web.topic_b);

  (* History: the sense-A page is an old favorite (many visits); the
     sense-B page was seen once. *)
  let sense_a = List.hd ambiguity.Web.pages_a in
  let sense_b = List.hd ambiguity.Web.pages_b in
  let tab = Engine.open_tab engine ~time:1000 () in
  let clock = ref 1000 in
  let visit p = clock := !clock + 60; ignore (Engine.visit_typed engine ~time:!clock ~tab p) in
  for _ = 1 to 6 do visit sense_a done;
  (* Right now: a topic-B session — some hubs, her rosebud page, one
     more hub currently on screen. *)
  List.iter visit (Web.hubs_of_topic web ambiguity.Web.topic_b);
  visit sense_b;
  visit (List.hd (Web.hubs_of_topic web ambiguity.Web.topic_b));
  let current = Engine.current_visit engine tab in

  let typed = String.sub ambiguity.Web.term 0 4 in
  Printf.printf "\nshe types %S while reading %s pages...\n\n" typed
    (name_of ambiguity.Web.topic_b);

  (* Baseline: Firefox 3's awesome bar over Places. *)
  let bar = Browser.Awesomebar.build (Engine.places engine) in
  print_endline "awesome bar (frecency):";
  List.iteri
    (fun i (s : Browser.Awesomebar.suggestion) ->
      Printf.printf "  %d. %-44s %s\n" (i + 1)
        (Provkit_util.Strutil.truncate 44 s.Browser.Awesomebar.title)
        s.Browser.Awesomebar.url)
    (Browser.Awesomebar.suggest ~limit:3 bar typed);

  (* Provenance: the same candidates, re-ranked by graph proximity to
     the visit currently on screen. *)
  let store = Core.Api.store prov in
  let context =
    match current with
    | Some v -> Option.to_list (Core.Prov_store.visit_node store v.Engine.visit_id)
    | None -> []
  in
  print_endline "provenance suggestions (context-aware):";
  List.iteri
    (fun i (s : Core.Suggest.suggestion) ->
      Printf.printf "  %d. %-44s %s\n" (i + 1)
        (Provkit_util.Strutil.truncate 44 s.Core.Suggest.title)
        s.Core.Suggest.url)
    (Core.Suggest.suggest ~limit:3 ~context store typed);

  let url p = Webmodel.Url.to_string (Web.page web p).Webmodel.Page_content.url in
  Printf.printf "\n(the %s sense lives at %s; the %s sense at %s)\n"
    (name_of ambiguity.Web.topic_a) (url sense_a)
    (name_of ambiguity.Web.topic_b) (url sense_b)
