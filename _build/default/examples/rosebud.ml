(* The paper's rosebud scenarios, end to end.

   S2.1 (contextual history search): a user searches the web for
   "rosebud" and clicks through to a page whose own text never mentions
   rosebud.  Later, searching *history* for rosebud should return that
   page — textual history search cannot, provenance can.

   S2.2 (personalizing web search): a different user is a gardener; to
   her "rosebud" means a flower.  Her provenance-aware browser expands
   the web query with terms from her own history — without telling the
   search engine anything about her.

   Run with: dune exec examples/rosebud.exe *)

module Web = Webmodel.Web_graph
module Engine = Browser.Engine

let hr title = Printf.printf "\n--- %s ---\n" title

let () =
  let web = Web.generate ~seed:2009 () in
  let search_engine = Webmodel.Search_engine.build web in
  (* The generator plants genuinely ambiguous terms across topic pairs;
     "rosebud" is always the first. *)
  let ambiguity =
    match List.find_opt (fun a -> a.Web.term = "rosebud") (Web.ambiguities web) with
    | Some a -> a
    | None -> failwith "no rosebud ambiguity in this web"
  in
  let name_of ti = Webmodel.Topic.name (Web.topic web ti) in
  Printf.printf "\"rosebud\" is ambiguous between %s and %s in this web\n"
    (name_of ambiguity.Web.topic_a) (name_of ambiguity.Web.topic_b);

  (* ----------------------------------------------------------------- *)
  hr "S2.1: contextual history search";
  let engine = Engine.create ~web ~search:search_engine () in
  let prov = Core.Api.attach engine in
  let tab = Engine.open_tab engine ~time:100 () in
  let _serp, results = Engine.search engine ~time:110 ~tab "rosebud" in
  (* The user clicks the sense-A result (her Citizen Kane). *)
  let target =
    match
      List.find_opt
        (fun (r : Webmodel.Search_engine.result) ->
          List.mem r.Webmodel.Search_engine.page ambiguity.Web.pages_a)
        results
    with
    | Some r -> r.Webmodel.Search_engine.page
    | None -> failwith "rosebud results lack the planted sense"
  in
  let visit = Engine.click_result engine ~time:130 ~tab target in
  Printf.printf "user clicked: %s\n" visit.Engine.title;
  (* From the result she follows a link to the page she actually cares
     about — her Citizen Kane.  Its own text never mentions rosebud;
     only provenance connects it to the search term. *)
  let page = Web.page web target in
  let citizen_kane =
    match
      List.find_opt
        (fun link ->
          let p = Web.page web link in
          p.Webmodel.Page_content.kind = Webmodel.Page_content.Article
          && not
               (Provkit_util.Strutil.contains_substring ~needle:"rosebud"
                  (String.lowercase_ascii p.Webmodel.Page_content.title)))
        (Array.to_list page.Webmodel.Page_content.links)
    with
    | Some link -> link
    | None -> failwith "the rosebud page links nowhere rosebud-free"
  in
  let ck_visit = Engine.visit_link engine ~time:160 ~tab citizen_kane in
  Printf.printf "...and read on to: %s (no 'rosebud' anywhere on it)\n" ck_visit.Engine.title;
  Engine.close_tab engine ~time:300 tab;

  (* Later: search history for "rosebud". *)
  let target_url =
    Webmodel.Url.to_string (Web.page web citizen_kane).Webmodel.Page_content.url
  in
  let baseline = Browser.History_search.build (Engine.places engine) in
  print_endline "textual history search (the baseline browser):";
  List.iteri
    (fun i (r : Browser.History_search.result) ->
      let p = Browser.Places_db.place (Engine.places engine) r.Browser.History_search.place_id in
      Printf.printf "  %d. %s %s\n" (i + 1) p.Browser.Places_db.title
        (if p.Browser.Places_db.url = target_url then " <-- the page she wants" else ""))
    (Browser.History_search.search ~limit:5 baseline "rosebud");
  print_endline "provenance contextual history search:";
  let response = Core.Api.contextual_history_search prov "rosebud" in
  List.iteri
    (fun i (r : Core.Contextual_search.result) ->
      Printf.printf "  %d. %s %s\n" (i + 1)
        (Core.Api.page_title prov r.Core.Contextual_search.page)
        (if Core.Api.page_url prov r.Core.Contextual_search.page = target_url then
           " <-- the page she wants"
         else ""))
    response.Core.Contextual_search.results;

  (* ----------------------------------------------------------------- *)
  hr "S2.2: personalizing web search (the gardener)";
  let engine2 = Engine.create ~web ~search:search_engine () in
  let prov2 = Core.Api.attach engine2 in
  let sense_b = ambiguity.Web.topic_b in
  (* The gardener's ordinary browsing: hubs and articles of her topic,
     including the rosebud-sense pages. *)
  let tab2 = Engine.open_tab engine2 ~time:1000 () in
  let clock = ref 1000 in
  let visit_page p =
    clock := !clock + 30;
    ignore (Engine.visit_typed engine2 ~time:!clock ~tab:tab2 p)
  in
  List.iter visit_page (Web.hubs_of_topic web sense_b);
  List.iter visit_page ambiguity.Web.pages_b;
  List.iter visit_page ambiguity.Web.pages_b;  (* she revisits: they matter to her *)
  Engine.close_tab engine2 ~time:(!clock + 30) tab2;

  let expansion = Core.Api.personalize_web_search prov2 "rosebud" in
  Printf.printf "query sent to the engine: %S (expanded from %S)\n"
    expansion.Core.Personalize.expanded expansion.Core.Personalize.original;
  let rank_of_sense query =
    let results = Webmodel.Search_engine.search ~limit:10 search_engine query in
    let ranks =
      List.filter_map
        (fun p ->
          Core.Metrics.rank_of ~equal:Int.equal p
            (List.map (fun (r : Webmodel.Search_engine.result) -> r.Webmodel.Search_engine.page) results))
        ambiguity.Web.pages_b
    in
    match ranks with [] -> None | _ -> Some (List.fold_left min max_int ranks)
  in
  let show label rank =
    Printf.printf "%s: %s\n" label
      (match rank with None -> "her sense is not in the top 10" | Some r -> Printf.sprintf "her sense ranks #%d" r)
  in
  show "raw \"rosebud\" web search     " (rank_of_sense "rosebud");
  show "provenance-expanded web search" (rank_of_sense expansion.Core.Personalize.expanded);
  print_endline "(the search engine saw only the expanded string - never her history)"
