(* Quickstart: build a small synthetic web, attach provenance capture to
   a browser engine, browse a little, and ask the provenance store what
   happened.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A world to browse: a topical synthetic web and a search engine
        over it. *)
  let web = Webmodel.Web_graph.generate ~seed:7 () in
  let search_engine = Webmodel.Search_engine.build web in
  Printf.printf "synthetic web: %d pages across %d topics\n"
    (Webmodel.Web_graph.page_count web)
    (Webmodel.Web_graph.topic_count web);

  (* 2. A browser with provenance capture attached (the one line that
        turns history into provenance). *)
  let engine = Browser.Engine.create ~web ~search:search_engine () in
  let prov = Core.Api.attach engine in

  (* 3. Browse: open a tab, search, click a result, follow a link. *)
  let tab = Browser.Engine.open_tab engine ~time:1000 () in
  let _serp, results = Browser.Engine.search engine ~time:1010 ~tab "wine" in
  (match results with
  | [] -> print_endline "no results!"
  | top :: _ ->
    let v1 =
      Browser.Engine.click_result engine ~time:1020 ~tab top.Webmodel.Search_engine.page
    in
    Printf.printf "clicked result: %s\n" v1.Browser.Engine.title;
    (* Follow a link off the page we landed on. *)
    let page = Webmodel.Web_graph.page web top.Webmodel.Search_engine.page in
    (match Array.to_list page.Webmodel.Page_content.links with
    | [] -> ()
    | link :: _ ->
      let v2 = Browser.Engine.visit_link engine ~time:1040 ~tab link in
      Printf.printf "followed link to: %s\n" v2.Browser.Engine.title));
  Browser.Engine.close_tab engine ~time:1100 tab;

  (* 4. What does the provenance store know? *)
  let store = Core.Api.store prov in
  Format.printf "%a" Core.Prov_store.pp_stats store;

  (* 5. Contextual history search: the paper's headline query.  The page
        we clicked is in the lineage of the search term "wine", so
        searching history for "wine" surfaces it even if its own text
        never mentions wine. *)
  let response = Core.Api.contextual_history_search prov "wine" in
  print_endline "contextual history search for \"wine\":";
  List.iteri
    (fun i (r : Core.Contextual_search.result) ->
      Printf.printf "  %d. %s  (score %.2f)\n" (i + 1)
        (Core.Api.page_title prov r.Core.Contextual_search.page)
        r.Core.Contextual_search.score)
    response.Core.Contextual_search.results;

  (* 6. Persist the provenance graph relationally and report its size. *)
  let db = Core.Api.persist prov in
  Printf.printf "relational image: %d bytes\n" (Relstore.Database.total_size db)
