(* S2.3: time-contextual history search.

   "Suppose the user is a wine enthusiast.  She wants to find a bottle
   of wine that she saw on a web page ... she does remember that she was
   also searching for plane tickets at the time."

   One tab reads wine pages while another searches travel; weeks of
   other wine browsing bury the page.  A plain "wine" history search
   drowns; "wine associated with <the travel search>" resurfaces it.

   Run with: dune exec examples/wine_and_tickets.exe *)

module Web = Webmodel.Web_graph
module Engine = Browser.Engine

let () =
  let web = Web.generate ~seed:1941 () in
  let search_engine = Webmodel.Search_engine.build web in
  let engine = Engine.create ~web ~search:search_engine () in
  let prov = Core.Api.attach engine in
  let wine = 0 (* the first default topic is "wine" *) in
  let travel = 3 (* and "travel" is fourth *) in
  assert (Webmodel.Topic.name (Web.topic web wine) = "wine");
  assert (Webmodel.Topic.name (Web.topic web travel) = "travel");
  let clock = ref 10_000 in
  let tick () = clock := !clock + 45; !clock in

  (* Weeks of ordinary wine browsing (the noise that makes a plain
     "wine" search useless). *)
  let articles =
    List.filter
      (fun p -> (Web.page web p).Webmodel.Page_content.kind = Webmodel.Page_content.Article)
      (Web.pages_of_topic web wine)
  in
  let tab = Engine.open_tab engine ~time:(tick ()) () in
  List.iter (fun p -> ignore (Engine.visit_typed engine ~time:(tick ()) ~tab p)) articles;
  Engine.close_tab engine ~time:(tick ()) tab;

  (* A week later: the session she will half-remember.  Tab A shows one
     specific wine page while tab B hunts plane tickets. *)
  clock := !clock + 7 * 86_400;
  let tab_a = Engine.open_tab engine ~time:(tick ()) () in
  let tab_b = Engine.open_tab engine ~time:(tick ()) ~opener:tab_a () in
  let special = List.nth articles (List.length articles / 2) in
  ignore (Engine.visit_typed engine ~time:(tick ()) ~tab:tab_a special);
  let travel_topic = Web.topic web travel in
  let rng = Provkit_util.Prng.create 99 in
  let ticket_query =
    Webmodel.Topic.sample_term travel_topic rng ^ " "
    ^ Webmodel.Topic.sample_term travel_topic rng
  in
  let _serp, results = Engine.search engine ~time:(tick ()) ~tab:tab_b ticket_query in
  (match results with
  | top :: _ -> ignore (Engine.click_result engine ~time:(tick ()) ~tab:tab_b top.Webmodel.Search_engine.page)
  | [] -> ());
  Engine.close_tab engine ~time:(tick ()) tab_a;
  Engine.close_tab engine ~time:(tick ()) tab_b;

  (* More wine noise afterwards. *)
  clock := !clock + 3 * 86_400;
  let tab = Engine.open_tab engine ~time:(tick ()) () in
  List.iter (fun p -> ignore (Engine.visit_typed engine ~time:(tick ()) ~tab p)) articles;
  Engine.close_tab engine ~time:(tick ()) tab;

  let special_url = Webmodel.Url.to_string (Web.page web special).Webmodel.Page_content.url in
  let mark page =
    if Core.Api.page_url prov page = special_url then " <-- the bottle she remembers" else ""
  in
  Printf.printf "the page to find: %s\n\n"
    (Web.page web special).Webmodel.Page_content.title;

  print_endline "plain history search for \"wine\" (every wine page matches):";
  let plain =
    Core.Contextual_search.textual_only ~limit:5 (Core.Api.text_index prov) "wine"
  in
  List.iteri
    (fun i (r : Core.Contextual_search.result) ->
      Printf.printf "  %d. %s%s\n" (i + 1)
        (Core.Api.page_title prov r.Core.Contextual_search.page)
        (mark r.Core.Contextual_search.page))
    plain;

  Printf.printf "\n\"wine associated with '%s'\" (time-contextual):\n" ticket_query;
  let response =
    Core.Api.time_contextual_search prov ~query:"wine" ~context:ticket_query
  in
  List.iteri
    (fun i (r : Core.Time_search.result) ->
      Printf.printf "  %d. %s%s\n" (i + 1)
        (Core.Api.page_title prov r.Core.Time_search.page)
        (mark r.Core.Time_search.page))
    response.Core.Time_search.results
