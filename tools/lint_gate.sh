#!/usr/bin/env bash
# Lint gate: fail the build when provlint reports a finding that is not
# in the committed baseline (tools/lint_baseline.json).
#
# The baseline is expected to stay empty ("[]").  It exists so an
# emergency fix can land with a known finding recorded explicitly
# instead of being waved through; burn entries down to zero again as
# soon as possible.  provlint emits one JSON object per line, so the
# gate is a plain line-wise membership test — no JSON parser needed.
#
# Usage: lint_gate.sh [provlint-exe] [root]
set -u

provlint=${1:-_build/default/bin/provlint.exe}
root=${2:-.}
baseline=$(dirname "$0")/lint_baseline.json

if [ ! -f "$baseline" ]; then
  echo "lint_gate: missing baseline $baseline" >&2
  exit 2
fi

out=$("$provlint" --json --root "$root")
status=$?
if [ "$status" -gt 1 ]; then
  echo "lint_gate: provlint failed (exit $status)" >&2
  exit 2
fi

new=0
while IFS= read -r line; do
  case "$line" in
    '{'*) ;;
    *) continue ;;
  esac
  entry=${line%,}
  if ! grep -qF -- "$entry" "$baseline"; then
    if [ "$new" -eq 0 ]; then
      echo "lint_gate: findings not in baseline:" >&2
    fi
    echo "  $entry" >&2
    new=1
  fi
done <<EOF
$out
EOF

if [ "$new" -ne 0 ]; then
  echo "lint_gate: fix the findings (see provlint --root $root) or, as a last" >&2
  echo "lint_gate: resort, add them to tools/lint_baseline.json with a comment in the PR." >&2
  exit 1
fi

echo "lint_gate: no findings outside baseline"
