#!/usr/bin/env bash
# Lint gate: fail the build when provlint reports a finding that is not
# in the committed baseline.
#
# The baseline is expected to stay empty.  It exists so an emergency fix
# can land with a known finding recorded explicitly instead of being
# waved through; burn entries down to zero again as soon as possible.
# Two enforced hygiene rules keep baseline debt temporary by
# construction:
#   - every baseline finding line must carry an "expires":"YYYY-MM-DD"
#     stamp (appended to the finding object; the gate strips it before
#     the membership test);
#   - an entry past its stamp fails the gate outright.
#
# provlint emits one finding object per line in both formats, so the
# gate is a plain line-wise membership test — no JSON parser needed.
#
# Usage: lint_gate.sh [provlint-exe] [root] [json|sarif]
set -u

provlint=${1:-_build/default/bin/provlint.exe}
root=${2:-.}
format=${3:-json}

case "$format" in
  json)
    baseline=$(dirname "$0")/lint_baseline.json
    flag=--json
    is_finding() { case "$1" in '{'*) return 0 ;; *) return 1 ;; esac; }
    ;;
  sarif)
    baseline=$(dirname "$0")/lint_baseline.sarif
    flag=--sarif
    is_finding() { case "$1" in *'"ruleId"'*) return 0 ;; *) return 1 ;; esac; }
    ;;
  *)
    echo "lint_gate: unknown format '$format' (expected json or sarif)" >&2
    exit 2
    ;;
esac

if [ ! -f "$baseline" ]; then
  echo "lint_gate: missing baseline $baseline" >&2
  exit 2
fi

# --- baseline hygiene: every entry carries an unexpired expires stamp ---
today=$(date +%F)
stale=0
while IFS= read -r line; do
  is_finding "$line" || continue
  entry=${line%,}
  exp=$(printf '%s' "$entry" | grep -o '"expires":"[0-9][0-9-]*"' | head -n1 | cut -d'"' -f4)
  if [ -z "$exp" ]; then
    echo "lint_gate: baseline entry without an \"expires\":\"YYYY-MM-DD\" stamp:" >&2
    echo "  $entry" >&2
    stale=1
  elif [ "$exp" \< "$today" ]; then
    echo "lint_gate: baseline entry expired on $exp (today is $today):" >&2
    echo "  $entry" >&2
    stale=1
  fi
done < "$baseline"
if [ "$stale" -ne 0 ]; then
  echo "lint_gate: expired baseline debt — fix the findings or renew the stamps consciously." >&2
  exit 1
fi

out=$("$provlint" $flag --root "$root")
status=$?
if [ "$status" -gt 1 ]; then
  echo "lint_gate: provlint failed (exit $status)" >&2
  exit 2
fi

# The expires stamp is gate metadata, not provlint output: strip it from
# baseline lines before the membership test.
stripped=$(sed 's/,"expires":"[0-9][0-9-]*"//' "$baseline")

new=0
while IFS= read -r line; do
  is_finding "$line" || continue
  entry=${line%,}
  if ! printf '%s\n' "$stripped" | grep -qF -- "$entry"; then
    if [ "$new" -eq 0 ]; then
      echo "lint_gate: findings not in baseline:" >&2
    fi
    echo "  $entry" >&2
    new=1
  fi
done <<EOF
$out
EOF

if [ "$new" -ne 0 ]; then
  echo "lint_gate: fix the findings (see provlint --root $root) or, as a last" >&2
  echo "lint_gate: resort, add them to $baseline with an expires stamp and a PR comment." >&2
  exit 1
fi

echo "lint_gate: no findings outside baseline ($format)"
