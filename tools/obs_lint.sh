#!/usr/bin/env bash
# @obs-check: metric-name hygiene.
#
# lib/obs/names.ml is the single source of truth for metric names.  Any
# string literal in lib/ or bin/ that looks like a metric name — a
# "prov." prefix with at least two dots — must appear there, so a typo
# in an instrumentation site fails the build instead of silently
# creating a parallel metric.  Test code is exempt: suites may invent
# scratch names.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
names_file="$root/lib/obs/names.ml"

if [ ! -f "$names_file" ]; then
  echo "obs-lint: $names_file not found" >&2
  exit 1
fi

registered=$(grep -oE '"prov\.[a-z_.]+"' "$names_file" | sort -u)

fail=0
while IFS= read -r hit; do
  file=${hit%%:*}
  rest=${hit#*:}
  line=${rest%%:*}
  literal=${rest#*:}
  [ "$file" = "$names_file" ] && continue
  if ! printf '%s\n' "$registered" | grep -qxF -- "$literal"; then
    echo "obs-lint: $file:$line: unregistered metric name $literal (add it to lib/obs/names.ml)" >&2
    fail=1
  fi
done < <(grep -rnoE '"prov\.[a-z_]+\.[a-z_]+(\.[a-z_]+)*"' "$root/lib" "$root/bin" --include='*.ml' 2>/dev/null)

exit $fail
