#!/usr/bin/env bash
# bench_compare.sh BASELINE.json CANDIDATE.json [THRESHOLD_PCT]
#
# Compares two provkit-bench/1 artifacts (as written by
# `bench/main.exe --json`) row by row and exits non-zero when any
# benchmark's ns/op regressed by more than THRESHOLD_PCT (default 15).
#
# The artifact keeps one row object per line exactly so this script can
# work with grep/sed/awk alone — no jq dependency in the image.
set -u

baseline="${1:?usage: bench_compare.sh BASELINE.json CANDIDATE.json [THRESHOLD_PCT]}"
candidate="${2:?usage: bench_compare.sh BASELINE.json CANDIDATE.json [THRESHOLD_PCT]}"
threshold="${3:-15}"

# First-run grace: with no baseline yet (file absent or empty) there is
# nothing to regress against — report the skip and succeed, so a fresh
# checkout can adopt the candidate as its first baseline.
if [ ! -s "$baseline" ]; then
  echo "bench_compare: no baseline at $baseline (first run?) — skipping comparison"
  exit 0
fi

for f in "$baseline" "$candidate"; do
  if ! grep -q '"schema": "provkit-bench/1"' "$f"; then
    echo "bench_compare: $f is not a provkit-bench/1 artifact" >&2
    exit 2
  fi
done

# Emit "name ns_per_op" pairs from the one-object-per-line rows.
rows() {
  grep -o '{"name":"[^"]*","iters":[0-9]*,"ns_per_op":[0-9.]*}' "$1" |
    sed 's/{"name":"\([^"]*\)","iters":[0-9]*,"ns_per_op":\([0-9.]*\)}/\1 \2/'
}

rows "$baseline" > "${TMPDIR:-/tmp}/bench_base.$$"
rows "$candidate" > "${TMPDIR:-/tmp}/bench_cand.$$"
trap 'rm -f "${TMPDIR:-/tmp}/bench_base.$$" "${TMPDIR:-/tmp}/bench_cand.$$"' EXIT

awk -v thr="$threshold" '
  NR == FNR { base[$1] = $2; next }
  {
    name = $1; cand = $2; seen[name] = 1
    if (!(name in base)) { printf "NEW       %-40s %12.1f ns/op\n", name, cand; next }
    b = base[name]
    if (b + 0 == 0 || cand + 0 == 0) { printf "SKIP      %-40s (zero sample)\n", name; next }
    delta = 100.0 * (cand / b - 1.0)
    tag = "ok"
    if (delta > thr) { tag = "REGRESSED"; bad++ }
    else if (delta < -thr) { tag = "improved" }
    printf "%-9s %-40s %12.1f -> %12.1f ns/op  %+6.1f%%\n", tag, name, b, cand, delta
  }
  END {
    # A row present in the baseline but absent from the candidate is a
    # silently dropped benchmark — fail, do not skip: a gate that stops
    # being measured is indistinguishable from one that regressed.
    for (name in base)
      if (!(name in seen)) { printf "MISSING   %-40s (in baseline, absent from candidate)\n", name; bad++ }
    if (bad > 0) { printf "\nbench_compare: %d benchmark(s) regressed or went missing (threshold %s%%)\n", bad, thr; exit 1 }
    print "\nbench_compare: no regressions beyond " thr "%"
  }
' "${TMPDIR:-/tmp}/bench_base.$$" "${TMPDIR:-/tmp}/bench_cand.$$"
