#!/usr/bin/env bash
# bench_smoke.sh BENCH_EXE
#
# Quick end-to-end check of the bench telemetry pipeline, run from the
# @bench-smoke dune alias on every `dune runtest`:
#   1. a quick bench run must produce a valid provkit-bench/1 artifact;
#   2. comparing the artifact against itself must pass;
#   3. a synthetic 2x regression must make bench_compare.sh fail.
set -eu

bench_exe="${1:?usage: bench_smoke.sh BENCH_EXE}"
here="$(cd "$(dirname "$0")" && pwd)"
work="$(mktemp -d "${TMPDIR:-/tmp}/bench_smoke.XXXXXX")"
trap 'rm -rf "$work"' EXIT

BENCH_QUICK=1 BENCH_OUT="$work/base.json" "$bench_exe" --json > "$work/stdout.txt" 2>&1 ||
  { echo "bench_smoke: bench run failed"; cat "$work/stdout.txt"; exit 1; }

grep -q '"schema": "provkit-bench/1"' "$work/base.json" ||
  { echo "bench_smoke: artifact missing provkit-bench/1 schema marker"; exit 1; }
grep -q '"ns_per_op":' "$work/base.json" ||
  { echo "bench_smoke: artifact has no ns_per_op rows"; exit 1; }

# The hot-path pairs (read cache, WAL group commit) and the matview
# pair (incremental update vs cold rescan) must be present, and each
# "after" side must beat its "before" side by at least 5x.
for row in hot-select-cold hot-select-cached wal-ingest-unbatched wal-ingest-batched \
           matview-update cold-rescan \
           stats-analyze estimate-error-heuristic estimate-error-stats \
           lint-full-tree; do
  grep -q "\"name\":\"$row\"" "$work/base.json" ||
    { echo "bench_smoke: artifact missing expected row $row"; exit 1; }
done
check_speedup() {
  before="$(grep "\"name\":\"$1\"" "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
  after="$(grep "\"name\":\"$2\"" "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
  awk -v b="$before" -v a="$after" 'BEGIN { exit !(a > 0 && b >= 5 * a) }' ||
    { echo "bench_smoke: $2 ($after ns) is not >= 5x faster than $1 ($before ns)"; exit 1; }
}
check_speedup hot-select-cold hot-select-cached
check_speedup wal-ingest-unbatched wal-ingest-batched
check_speedup cold-rescan matview-update

# The estimate-error pair stores max error ratios (not latencies) in
# ns_per_op: the stats-guided estimator must be strictly more accurate
# than the heuristic on the skewed workload.
heur_err="$(grep '"name":"estimate-error-heuristic"' "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
stats_err="$(grep '"name":"estimate-error-stats"' "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
awk -v h="$heur_err" -v s="$stats_err" 'BEGIN { exit !(s >= 1 && h > s) }' ||
  { echo "bench_smoke: stats estimate error ($stats_err) not below heuristic ($heur_err)"; exit 1; }

# First-run grace: a missing baseline must skip cleanly, not fail.
bash "$here/bench_compare.sh" "$work/no_such_baseline.json" "$work/base.json" > /dev/null ||
  { echo "bench_compare: missing baseline should be a clean skip"; exit 1; }

bash "$here/bench_compare.sh" "$work/base.json" "$work/base.json" > /dev/null ||
  { echo "bench_smoke: self-comparison unexpectedly flagged a regression"; exit 1; }

# Double every ns_per_op: a guaranteed >15% regression the comparator
# must catch, otherwise the regression gate is not actually gating.
awk '{
  if (match($0, /"ns_per_op":[0-9.]+/)) {
    v = substr($0, RSTART + 12, RLENGTH - 12)
    printf "%s\"ns_per_op\":%.3f%s\n", substr($0, 1, RSTART - 1), v * 2, substr($0, RSTART + RLENGTH)
  } else print
}' "$work/base.json" > "$work/slow.json"

if bash "$here/bench_compare.sh" "$work/base.json" "$work/slow.json" > /dev/null; then
  echo "bench_smoke: comparator missed a synthetic 2x regression"
  exit 1
fi

# Drop one expected row from the candidate: the comparator must fail on
# the missing benchmark, not silently compare the remainder.
grep -v '"name":"matview-update"' "$work/base.json" > "$work/missing.json"
if bash "$here/bench_compare.sh" "$work/base.json" "$work/missing.json" > /dev/null; then
  echo "bench_smoke: comparator missed a dropped benchmark row"
  exit 1
fi

echo "bench_smoke: artifact valid, comparator gates regressions and dropped rows"
