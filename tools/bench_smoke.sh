#!/usr/bin/env bash
# bench_smoke.sh BENCH_EXE
#
# Quick end-to-end check of the bench telemetry pipeline, run from the
# @bench-smoke dune alias on every `dune runtest`:
#   1. a quick bench run must produce a valid provkit-bench/1 artifact;
#   2. comparing the artifact against itself must pass;
#   3. a synthetic 2x regression must make bench_compare.sh fail.
#
# The run's artifact is kept (not just checked and thrown away with the
# temp dir): it is copied to BENCH_<date>.json in BENCH_ARTIFACT_DIR
# (default: the working directory), so every runtest leaves a bench
# trajectory point.  When a committed BENCH_*.json baseline exists next
# to tools/, the fresh artifact is also compared against it — advisory
# only (a warning, not a failure): absolute timings are not portable
# across machines, and the hard gates below already cover the invariants
# that are.
set -eu

bench_exe="${1:?usage: bench_smoke.sh BENCH_EXE}"
here="$(cd "$(dirname "$0")" && pwd)"
root="$(dirname "$here")"
work="$(mktemp -d "${TMPDIR:-/tmp}/bench_smoke.XXXXXX")"
trap 'rm -rf "$work"' EXIT

BENCH_QUICK=1 BENCH_OUT="$work/base.json" "$bench_exe" --json > "$work/stdout.txt" 2>&1 ||
  { echo "bench_smoke: bench run failed"; cat "$work/stdout.txt"; exit 1; }

grep -q '"schema": "provkit-bench/1"' "$work/base.json" ||
  { echo "bench_smoke: artifact missing provkit-bench/1 schema marker"; exit 1; }
grep -q '"ns_per_op":' "$work/base.json" ||
  { echo "bench_smoke: artifact has no ns_per_op rows"; exit 1; }

# The hot-path pairs (read cache, WAL group commit) and the matview
# pair (incremental update vs cold rescan) must be present, and each
# "after" side must beat its "before" side by at least 5x.
for row in hot-select-cold hot-select-cached wal-ingest-unbatched wal-ingest-batched \
           matview-update cold-rescan \
           stats-analyze estimate-error-heuristic estimate-error-stats \
           lint-full-tree alert-eval \
           daemon-ingest daemon-query-p99 range-strict-full-scan range-strict-index; do
  grep -q "\"name\":\"$row\"" "$work/base.json" ||
    { echo "bench_smoke: artifact missing expected row $row"; exit 1; }
done
check_speedup() {
  before="$(grep "\"name\":\"$1\"" "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
  after="$(grep "\"name\":\"$2\"" "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
  awk -v b="$before" -v a="$after" 'BEGIN { exit !(a > 0 && b >= 5 * a) }' ||
    { echo "bench_smoke: $2 ($after ns) is not >= 5x faster than $1 ($before ns)"; exit 1; }
}
check_speedup hot-select-cold hot-select-cached
check_speedup wal-ingest-unbatched wal-ingest-batched
check_speedup cold-rescan matview-update
# The strict-range planner fix: the reopened index path must beat the
# full scan at the same selectivity by at least 5x.
check_speedup range-strict-full-scan range-strict-index

# The daemon pair must carry real measurements: a fleet that ingested
# nothing or served no reads writes zeros here.
daemon_ns="$(grep '"name":"daemon-ingest"' "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
daemon_p99="$(grep '"name":"daemon-query-p99"' "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
awk -v i="$daemon_ns" -v p="$daemon_p99" 'BEGIN { exit !(i > 0 && p > 0) }' ||
  { echo "bench_smoke: daemon rows not positive (ingest=$daemon_ns p99=$daemon_p99)"; exit 1; }

# The estimate-error pair stores max error ratios (not latencies) in
# ns_per_op: the stats-guided estimator must be strictly more accurate
# than the heuristic on the skewed workload.
heur_err="$(grep '"name":"estimate-error-heuristic"' "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
stats_err="$(grep '"name":"estimate-error-stats"' "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
awk -v h="$heur_err" -v s="$stats_err" 'BEGIN { exit !(s >= 1 && h > s) }' ||
  { echo "bench_smoke: stats estimate error ($stats_err) not below heuristic ($heur_err)"; exit 1; }

# Alert rules run on every pulse point; evaluation must stay cheap in
# absolute terms (ns per rule per point — 20 us is already two orders
# of magnitude above the expected cost, so this only catches blowups).
alert_ns="$(grep '"name":"alert-eval"' "$work/base.json" | sed 's/.*"ns_per_op":\([0-9.]*\).*/\1/')"
awk -v a="$alert_ns" 'BEGIN { exit !(a > 0 && a < 20000) }' ||
  { echo "bench_smoke: alert-eval ($alert_ns ns/rule/point) outside (0, 20000)"; exit 1; }

# Keep the trajectory: pick the committed baseline (if any) before the
# fresh copy lands, then persist this run's artifact.
baseline="$(ls "$root"/BENCH_*.json 2>/dev/null | sort | tail -1 || true)"
artifact_dir="${BENCH_ARTIFACT_DIR:-$PWD}"
stamp="$(date +%Y-%m-%d)"
cp "$work/base.json" "$artifact_dir/BENCH_$stamp.json" 2>/dev/null ||
  echo "bench_smoke: warning: could not persist artifact to $artifact_dir"
if [ -n "$baseline" ] && [ -f "$baseline" ]; then
  if bash "$here/bench_compare.sh" "$baseline" "$work/base.json" 400 > "$work/trend.txt" 2>&1; then
    echo "bench_smoke: within 400% of committed baseline $(basename "$baseline")"
  else
    echo "bench_smoke: warning: drift against committed baseline $(basename "$baseline") (advisory)"
    cat "$work/trend.txt"
  fi
fi

# First-run grace: a missing baseline must skip cleanly, not fail.
bash "$here/bench_compare.sh" "$work/no_such_baseline.json" "$work/base.json" > /dev/null ||
  { echo "bench_compare: missing baseline should be a clean skip"; exit 1; }

bash "$here/bench_compare.sh" "$work/base.json" "$work/base.json" > /dev/null ||
  { echo "bench_smoke: self-comparison unexpectedly flagged a regression"; exit 1; }

# Double every ns_per_op: a guaranteed >15% regression the comparator
# must catch, otherwise the regression gate is not actually gating.
awk '{
  if (match($0, /"ns_per_op":[0-9.]+/)) {
    v = substr($0, RSTART + 12, RLENGTH - 12)
    printf "%s\"ns_per_op\":%.3f%s\n", substr($0, 1, RSTART - 1), v * 2, substr($0, RSTART + RLENGTH)
  } else print
}' "$work/base.json" > "$work/slow.json"

if bash "$here/bench_compare.sh" "$work/base.json" "$work/slow.json" > /dev/null; then
  echo "bench_smoke: comparator missed a synthetic 2x regression"
  exit 1
fi

# Drop one expected row from the candidate: the comparator must fail on
# the missing benchmark, not silently compare the remainder.
grep -v '"name":"matview-update"' "$work/base.json" > "$work/missing.json"
if bash "$here/bench_compare.sh" "$work/base.json" "$work/missing.json" > /dev/null; then
  echo "bench_smoke: comparator missed a dropped benchmark row"
  exit 1
fi

echo "bench_smoke: artifact valid, comparator gates regressions and dropped rows"
