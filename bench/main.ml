(* The benchmark harness.

   Part 1 — bechamel micro-benchmarks: one Test.make per paper
   experiment that has a latency dimension (the four S2 use-case queries
   plus the persistence path), all run against the standard 79-day
   dataset, reporting nanoseconds per run via OLS.

   Part 2 — the experiment tables: every E1..E16 report from DESIGN.md's
   experiment index, regenerated and printed (these are the numbers
   EXPERIMENTS.md quotes).

   Run with: dune exec bench/main.exe
   Use BENCH_QUICK=1 for a fast smoke run. *)

open Bechamel
open Toolkit

let quick = Sys.getenv_opt "BENCH_QUICK" <> None

let seed = 42

let dataset =
  lazy (if quick then Harness.Dataset.with_days ~seed 8 else Harness.Dataset.default ~seed ())

(* ------------------------------------------------------------------ *)
(* Part 1: micro-benchmarks                                             *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let ds = Lazy.force dataset in
  let index = Core.Api.text_index ds.Harness.Dataset.api in
  let time_index = Harness.Dataset.time_index ds in
  let store = Harness.Dataset.store ds in
  let rng = Provkit_util.Prng.create 2024 in
  let queries =
    match
      List.map
        (fun (e : Browser.User_model.search_episode) -> e.Browser.User_model.query)
        ds.Harness.Dataset.trace.Browser.User_model.searches
    with
    | [] -> [| "wine" |]
    | qs -> Array.of_list qs
  in
  let downloads =
    Array.of_list
      (List.filter_map
         (fun (d : Browser.User_model.download_episode) ->
           Core.Prov_store.download_node store d.Browser.User_model.download_id)
         ds.Harness.Dataset.trace.Browser.User_model.downloads)
  in
  let hubs =
    Array.of_list
      (List.filter_map
         (fun h -> Harness.Dataset.page_node ds h)
         (List.concat_map
            (fun ti -> Webmodel.Web_graph.hubs_of_topic ds.Harness.Dataset.web ti)
            (List.init (Webmodel.Web_graph.topic_count ds.Harness.Dataset.web) Fun.id)))
  in
  let pick arr = Provkit_util.Prng.pick rng arr in
  [
    (* E3/E4: contextual history search (S2.1) *)
    Test.make ~name:"E3-contextual-history-search"
      (Staged.stage (fun () ->
           ignore (Core.Contextual_search.search index (pick queries))));
    (* E3/E5: personalization term mining (S2.2) *)
    Test.make ~name:"E3-personalize-web-search"
      (Staged.stage (fun () -> ignore (Core.Personalize.expand index (pick queries))));
    (* E3/E6: time-contextual search (S2.3) *)
    Test.make ~name:"E3-time-contextual-search"
      (Staged.stage (fun () ->
           ignore
             (Core.Time_search.search index time_index ~query:(pick queries)
                ~context:(pick queries))));
    (* E3/E7: download lineage (S2.4) *)
    Test.make ~name:"E3-download-lineage"
      (Staged.stage (fun () ->
           if Array.length downloads > 0 then
             ignore (Core.Lineage.first_recognizable store (pick downloads))));
    Test.make ~name:"E3-downloads-descending"
      (Staged.stage (fun () ->
           if Array.length hubs > 0 then
             ignore (Core.Lineage.downloads_descending store (pick hubs))));
    (* E3 bounded variant: the paper's 200ms bound *)
    Test.make ~name:"E3-contextual-bounded-200ms"
      (Staged.stage (fun () ->
           ignore
             (Core.Contextual_search.search ~budget:Core.Query_budget.paper_default index
                (pick queries))));
    (* E2: the persistence path whose output is measured *)
    Test.make ~name:"E2-serialize-provenance-store"
      (Staged.stage (fun () -> ignore (Core.Prov_schema.to_database store)));
    (* E9: acyclicity check over the whole store *)
    Test.make ~name:"E9-acyclicity-check"
      (Staged.stage (fun () -> ignore (Core.Versioning.is_acyclic store)));
  ]

let micro_iters = if quick then 200 else 1000

(* (name, ns/run) for every micro test — shared by the table printer and
   the --json artifact writer. *)
let measure_micro () =
  let tests = micro_tests () in
  let cfg =
    Benchmark.cfg ~limit:micro_iters
      ~quota:(Time.second (if quick then 0.2 else 0.7))
      ~kde:None ()
  in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.concat_map
    (fun test ->
      let results =
        Benchmark.all cfg [ Instance.monotonic_clock ]
          (Test.make_grouped ~name:"" [ test ])
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | _ -> nan
          in
          (name, ns) :: acc)
        analyzed [])
    tests

let run_micro measured =
  print_endline "== micro-benchmarks (bechamel, ns/run via OLS) ==\n";
  Provkit_util.Table_fmt.print
    ~header:[ "benchmark"; "time/run"; "time/run (ms)" ]
    (List.map
       (fun (name, ns) ->
         [ name; Printf.sprintf "%.0f ns" ns; Printf.sprintf "%.3f ms" (ns /. 1e6) ])
       measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 1.5: observability overhead                                     *)
(* ------------------------------------------------------------------ *)

(* The instrumentation contract is "default cheap": a disabled registry
   costs one branch per record; an enabled one a few array writes plus
   two clock reads per query.  Run the same indexed-probe workload with
   the registry off and on and report the relative cost. *)
let measure_obs_overhead () =
  let ds = Lazy.force dataset in
  let store = Harness.Dataset.store ds in
  let db = Core.Prov_schema.to_database store in
  let nodes = Relstore.Database.table db "prov_node" in
  let schema = Relstore.Table.schema nodes in
  let probes =
    Relstore.Table.fold nodes ~init:[] ~f:(fun acc _ row ->
        if List.length acc >= 64 then acc
        else
          match Relstore.Row.text_opt schema row "url" with
          | Some u -> Relstore.Predicate.Eq ("url", Relstore.Value.Text u) :: acc
          | None -> acc)
    |> Array.of_list
  in
  let probe_work () =
    Array.iter (fun p -> ignore (Relstore.Query_exec.select ~where:p nodes)) probes
  in
  let scan_pred = Relstore.Predicate.Eq ("kind", Relstore.Value.Int 1) in
  let scan_work () = ignore (Relstore.Query_exec.select ~where:scan_pred nodes) in
  let measure work iters queries_per_iter enabled =
    Provkit_obs.Metrics.set_enabled enabled;
    work ();
    let t0 = Provkit_util.Timing.now_ns () in
    for _ = 1 to iters do
      work ()
    done;
    let dt = Int64.to_float (Int64.sub (Provkit_util.Timing.now_ns ()) t0) in
    dt /. float_of_int (iters * queries_per_iter)
  in
  let was_on = Provkit_obs.Metrics.enabled () in
  let row name work iters queries_per_iter =
    let off_ns = measure work iters queries_per_iter false in
    let on_ns = measure work iters queries_per_iter true in
    (name, off_ns, on_ns)
  in
  let probe_iters = if quick then 200 else 2000 in
  let scan_iters = if quick then 50 else 200 in
  (* The probes repeat identical queries, which is exactly what the
     result cache short-circuits — leave it on and both the off and on
     runs would time cache hits instead of the instrumented query path. *)
  Relstore.Query_exec.set_cache_enabled false;
  let rows =
    [
      row "index probe (worst case)" probe_work probe_iters (Array.length probes);
      row "full scan (representative)" scan_work scan_iters 1;
    ]
  in
  Relstore.Query_exec.set_cache_enabled true;
  Provkit_obs.Metrics.set_enabled was_on;
  rows

let run_obs_overhead measured =
  print_endline "== observability overhead (ns/query, registry off vs on) ==\n";
  Provkit_util.Table_fmt.print ~header:[ "workload"; "off"; "on"; "overhead" ]
    (List.map
       (fun (name, off_ns, on_ns) ->
         [
           name;
           Printf.sprintf "%.0f" off_ns;
           Printf.sprintf "%.0f" on_ns;
           Printf.sprintf "%+.1f%%" (100.0 *. ((on_ns /. off_ns) -. 1.0));
         ])
       measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 1.6: hot-path rows — read cache and WAL group commit            *)
(* ------------------------------------------------------------------ *)

(* The two PR-5 hot paths, each as a before/after pair of artifact rows
   so bench_compare.sh can gate the speedups:
   - a repeated scan-shaped select, cache off vs warm cache;
   - WAL ingest of the same op list, one fsync per append vs
     group-committed batches.
   Manual timing loops (not bechamel): both paths are stateful — the
   cache must stay warm across runs, the WAL must write to a fresh
   directory per run — which OLS sampling does not accommodate. *)

let time_per_op iters per_iter f =
  f ();
  let t0 = Provkit_util.Timing.now_ns () in
  for _ = 1 to iters do
    f ()
  done;
  let dt = Int64.to_float (Int64.sub (Provkit_util.Timing.now_ns ()) t0) in
  dt /. float_of_int (iters * per_iter)

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> remove_tree (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let measure_hot_paths () =
  let ds = Lazy.force dataset in
  let store = Harness.Dataset.store ds in
  let db = Core.Prov_schema.to_database store in
  let nodes = Relstore.Database.table db "prov_node" in
  let pred = Relstore.Predicate.Eq ("kind", Relstore.Value.Int 1) in
  let select_iters = if quick then 100 else 1000 in
  Relstore.Query_exec.set_cache_enabled false;
  let cold_ns =
    time_per_op select_iters 1 (fun () ->
        ignore (Relstore.Query_exec.select ~where:pred nodes))
  in
  Relstore.Query_exec.set_cache_enabled true;
  Relstore.Query_exec.clear_cache ();
  let cached_ns =
    time_per_op select_iters 1 (fun () ->
        ignore (Relstore.Query_exec.select ~where:pred nodes))
  in
  (* A realistic op stream for the ingest pair: record a synthetic burst
     of visits through the journaling store. *)
  let wal_ops =
    let rstore, journal = Core.Prov_log.recording_store () in
    for i = 1 to if quick then 128 else 512 do
      ignore
        (Core.Prov_store.add_visit rstore ~engine_visit:i
           ~url:(Printf.sprintf "https://bench.example/%d" i)
           ~title:"bench" ~transition:Browser.Transition.Link ~tab:1 ~time:i)
    done;
    Core.Prov_log.ops journal
  in
  let n_ops = List.length wal_ops in
  let wal_iters = if quick then 3 else 10 in
  let tmp_root =
    let d = Filename.temp_file "provkit_bench_wal" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let run_no = ref 0 in
  let module Seg = Core.Prov_log.Segmented in
  let ingest ~batched () =
    incr run_no;
    let dir = Filename.concat tmp_root (Printf.sprintf "run%d" !run_no) in
    let config =
      if batched then
        { Seg.default_config with Seg.group_commit_ops = 64; Seg.group_commit_bytes = 1 lsl 20 }
      else Seg.default_config
    in
    let h = Seg.open_ ~config dir in
    if batched then Seg.append_batch h wal_ops else List.iter (Seg.append h) wal_ops;
    Seg.close h
  in
  let unbatched_ns = time_per_op wal_iters n_ops (ingest ~batched:false) in
  let batched_ns = time_per_op wal_iters n_ops (ingest ~batched:true) in
  remove_tree tmp_root;
  [
    ("hot-select-cold", select_iters, cold_ns);
    ("hot-select-cached", select_iters, cached_ns);
    ("wal-ingest-unbatched", wal_iters * n_ops, unbatched_ns);
    ("wal-ingest-batched", wal_iters * n_ops, batched_ns);
  ]

let run_hot_paths measured =
  print_endline "== hot paths (read cache, WAL group commit; ns/op) ==\n";
  Provkit_util.Table_fmt.print ~header:[ "path"; "ns/op" ]
    (List.map (fun (name, _, ns) -> [ name; Printf.sprintf "%.0f" ns ]) measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 1.7: matview rows — incremental update vs cold rescan           *)
(* ------------------------------------------------------------------ *)

(* The matview acceptance pair: ns per event folded through the warm
   Places views (the real ingest path: table apply + all five view
   folds) against ns per cold recomputation of the same five queries
   over the final tables.  bench_smoke.sh gates the incremental side at
   >= 5x faster — the point of maintaining the views at all. *)
let measure_matview () =
  let n_events = if quick then 512 else 2_048 in
  let urls =
    Array.init 40 (fun i ->
        Webmodel.Url.make
          ~path:[ Printf.sprintf "p%d" (i mod 5) ]
          (Printf.sprintf "site%d.example" (i / 5)))
  in
  let mk i =
    Browser.Event.Visit
      {
        visit_id = i;
        time = i * 400;
        tab = 1;
        page = None;
        url = urls.(i mod Array.length urls);
        title = "bench";
        transition = (if i mod 11 = 0 then Browser.Transition.Typed else Browser.Transition.Link);
        referrer = (if i > 1 && i mod 3 <> 0 then Some (i - 1) else None);
        via_bookmark = None;
      }
  in
  let places = Browser.Places_db.create () in
  let mv = Browser.Places_views.create places in
  Browser.Places_views.ingest_batch mv (List.init n_events (fun i -> mk (i + 1)));
  let rescan_iters = if quick then 20 else 100 in
  let rescan_ns =
    time_per_op rescan_iters 1 (fun () ->
        ignore (Browser.Places_views.cold_frecency_top ~top_n:10 places);
        ignore (Browser.Places_views.cold_host_visits places);
        ignore (Browser.Places_views.cold_download_referrers places);
        ignore (Browser.Places_views.cold_recent_visits ~now:(Browser.Places_views.now mv) places);
        ignore (Browser.Places_views.cold_place_visits places))
  in
  let next_id = ref (n_events + 1) in
  let batch = 256 in
  let upd_iters = if quick then 8 else 24 in
  let update_ns =
    time_per_op upd_iters batch (fun () ->
        for _ = 1 to batch do
          Browser.Places_views.ingest mv (mk !next_id);
          incr next_id
        done)
  in
  Relstore.Query_exec.clear_matview_sources ();
  [ ("matview-update", upd_iters * batch, update_ns); ("cold-rescan", rescan_iters, rescan_ns) ]

let run_matview measured =
  print_endline "== matview (incremental update vs cold rescan; ns/op) ==\n";
  Provkit_util.Table_fmt.print ~header:[ "path"; "ns/op" ]
    (List.map (fun (name, _, ns) -> [ name; Printf.sprintf "%.0f" ns ]) measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 1.8: statistics catalog — analyze cost and estimate accuracy    *)
(* ------------------------------------------------------------------ *)

(* Two concerns, three rows.  "stats-analyze" is the cost of a full
   ANALYZE pass over the dataset's biggest table, in honest ns/op.  The
   "estimate-error-*" pair reuses the ns_per_op field to carry a
   dimensionless max error ratio (>= 1.0, estimated vs actual rows,
   worse direction) over a fixed skewed workload — heuristic planner
   vs statistics-guided — so bench_smoke.sh can assert the catalog
   actually buys accuracy, and bench_compare.sh flags an estimator
   regression like any latency row. *)
let measure_stats () =
  let ds = Lazy.force dataset in
  let db = Core.Prov_schema.to_database (Harness.Dataset.store ds) in
  let nodes = Relstore.Database.table db "prov_node" in
  let analyze_iters = if quick then 5 else 20 in
  let analyze_ns =
    time_per_op analyze_iters 1 (fun () -> ignore (Relstore.Stats.analyze nodes))
  in
  Relstore.Stats.invalidate nodes;
  (* The skewed workload: an indexed Zipf column the histogram captures,
     a uniform non-indexed column the heuristic has no answer for. *)
  let rng = Provkit_util.Prng.create (seed + 8) in
  let z = Provkit_util.Zipf.create ~n:200 ~s:1.1 in
  let t =
    Relstore.Table.create
      (Relstore.Schema.make ~name:"bench_zipf"
         [
           Relstore.Column.make "rank" Relstore.Value.Tint;
           Relstore.Column.make "shard" Relstore.Value.Tint;
         ])
  in
  Relstore.Table.add_index t ~name:"by_rank" ~columns:[ "rank" ];
  for _ = 1 to 4_000 do
    ignore
      (Relstore.Table.insert_fields t
         [
           ("rank", Relstore.Value.Int (Provkit_util.Zipf.sample z rng));
           ("shard", Relstore.Value.Int (Provkit_util.Prng.int rng 16));
         ])
  done;
  let queries =
    Relstore.Predicate.
      [
        Eq ("rank", Relstore.Value.Int 0);
        Eq ("shard", Relstore.Value.Int 3);
        And [ Eq ("rank", Relstore.Value.Int 0); Eq ("shard", Relstore.Value.Int 3) ];
        Between ("rank", Relstore.Value.Int 0, Relstore.Value.Int 5);
      ]
  in
  let actual p =
    let schema = Relstore.Table.schema t in
    List.length
      (List.filter (fun (_, row) -> Relstore.Predicate.eval p schema row) (Relstore.Table.rows t))
  in
  let worst detail_of =
    List.fold_left
      (fun acc p ->
        let est = float_of_int (detail_of t p).Relstore.Query_exec.estimated_rows in
        let act = float_of_int (max 1 (actual p)) in
        Float.max acc (Float.max (Float.max 1.0 est /. act) (act /. Float.max 1.0 est)))
      1.0 queries
  in
  let heuristic_worst = worst Relstore.Query_exec.plan_detail_heuristic in
  ignore (Relstore.Stats.analyze t);
  let stats_worst = worst Relstore.Query_exec.plan_detail in
  Relstore.Stats.invalidate t;
  [
    ("stats-analyze", analyze_iters, analyze_ns);
    ("estimate-error-heuristic", List.length queries, heuristic_worst);
    ("estimate-error-stats", List.length queries, stats_worst);
  ]

let run_stats measured =
  print_endline "== statistics catalog (analyze ns/op; estimate max error ratio) ==\n";
  Provkit_util.Table_fmt.print ~header:[ "row"; "value" ]
    (List.map (fun (name, _, v) -> [ name; Printf.sprintf "%.1f" v ]) measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 1.9: provlint — full-tree analysis cost                         *)
(* ------------------------------------------------------------------ *)

(* The lint pass is part of every `dune runtest` (and of editor loops
   via @lint-v2-check), so its full-tree wall time is a developer-facing
   latency.  One row keeps it visible in the telemetry artifact: a
   parse-cache regression or an accidentally quadratic check shows up in
   bench_compare.sh like any other slowdown.  The tree is located the
   same way the lint integration test finds it (walk up from cwd); when
   the bench runs somewhere without sources, a 0 ns row keeps the
   artifact shape stable and bench_compare skips it. *)
let rec find_lint_root dir depth =
  if depth > 6 then None
  else if Sys.file_exists (Filename.concat dir "lib/obs/names.ml") then Some dir
  else find_lint_root (Filename.dirname dir) (depth + 1)

let measure_lint () =
  match find_lint_root (Sys.getcwd ()) 0 with
  | None -> [ ("lint-full-tree", 0, 0.0) ]
  | Some root ->
    let iters = if quick then 2 else 5 in
    let ns =
      time_per_op iters 1 (fun () -> ignore (Provkit_lint.Driver.lint_tree ~root ()))
    in
    [ ("lint-full-tree", iters, ns) ]

let run_lint measured =
  print_endline "== provlint (full lib/ + bin/ tree, all checks; ns/pass) ==\n";
  Provkit_util.Table_fmt.print ~header:[ "pass"; "ms/pass" ]
    (List.map (fun (name, _, ns) -> [ name; Printf.sprintf "%.1f" (ns /. 1e6) ]) measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 1.95: alert-rule evaluation cost                                *)
(* ------------------------------------------------------------------ *)

(* Rules evaluate on every pulse point, so their cost rides the ingest
   path (amortized by the pulse interval, but still).  The row is ns
   per rule per point over the full default catalog against synthetic
   healthy-looking snapshots — none of the rules fires, which is the
   steady-state the evaluator spends its life in. *)
let measure_alert () =
  Provkit_obs.Alert.reset ();
  List.iter Provkit_obs.Alert.register Provkit_obs.Alert.defaults;
  let n_rules = List.length Provkit_obs.Alert.defaults in
  let snap v =
    {
      Provkit_obs.Metrics.snap_counters =
        [
          (Provkit_obs.Names.capture_events, v);
          (Provkit_obs.Names.query_cache_hits, v);
          (Provkit_obs.Names.query_cache_misses, v / 2);
          (Provkit_obs.Names.stats_estimates, v);
          (Provkit_obs.Names.stats_misestimates, v / 25);
        ];
      snap_gauges =
        [
          (Provkit_obs.Names.wal_fsyncs_per_append, 1.0);
          (Provkit_obs.Names.matview_staleness, 3.0);
        ];
      snap_histograms =
        [
          ( Provkit_obs.Names.query_latency_ns,
            {
              Provkit_obs.Metrics.hs_count = v;
              hs_sum = 1e6;
              hs_min = 100;
              hs_max = 1_000_000;
              hs_p50 = 1e4;
              hs_p95 = 1e5;
              hs_p99 = 1e6;
            } );
        ];
    }
  in
  let older = { Provkit_obs.Timeseries.pt_ns = 0L; pt_snap = snap 1_000 } in
  let newer = { Provkit_obs.Timeseries.pt_ns = 1_000_000_000L; pt_snap = snap 2_000 } in
  let iters = if quick then 2_000 else 20_000 in
  let ns = time_per_op iters n_rules (fun () -> Provkit_obs.Alert.evaluate ~older ~newer) in
  Provkit_obs.Alert.reset ();
  [ ("alert-eval", iters, ns) ]

let run_alert measured =
  print_endline "== alert engine (default catalog; ns per rule per point) ==\n";
  Provkit_util.Table_fmt.print ~header:[ "row"; "ns/rule/point" ]
    (List.map (fun (name, _, ns) -> [ name; Printf.sprintf "%.1f" ns ]) measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 1.96: provd — concurrent ingest and snapshot-read latency       *)
(* ------------------------------------------------------------------ *)

(* The serving front-end's two acceptance numbers, from one real
   multi-domain run of the loadgen engine: wall-clock ns per ingested
   event across the whole fleet (queue + batch + matview + snapshot
   republish), and the p99 snapshot-read latency the read workers
   observed while ingest was running. *)
let measure_daemon () =
  let events = if quick then 150 else 600 in
  let cfg =
    {
      Daemon.Provd.default with
      Daemon.Provd.sessions = 4;
      events_per_session = events;
      seed;
    }
  in
  let r = Daemon.Provd.run cfg in
  let per_event =
    if r.Daemon.Provd.r_events > 0 then
      float_of_int r.Daemon.Provd.r_elapsed_ns /. float_of_int r.Daemon.Provd.r_events
    else 0.0
  in
  [
    ("daemon-ingest", r.Daemon.Provd.r_events, per_event);
    ("daemon-query-p99", r.Daemon.Provd.r_reads, float_of_int r.Daemon.Provd.r_read_p99_ns);
  ]

let run_daemon measured =
  print_endline "== provd (4-session fleet; ingest ns/event, read p99 ns) ==\n";
  Provkit_util.Table_fmt.print ~header:[ "row"; "ns" ]
    (List.map (fun (name, _, ns) -> [ name; Printf.sprintf "%.0f" ns ]) measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 1.97: strict-range planner — index path vs full scan            *)
(* ------------------------------------------------------------------ *)

(* The planner-bugfix acceptance pair: a strict `<` predicate over the
   same data and selectivity, once on an indexed column (the path the
   fix reopened — strict bounds used to fall back to scanning) and once
   on an unindexed copy of the column.  bench_smoke.sh gates the index
   side at >= 5x. *)
let measure_range () =
  let n_rows = if quick then 4_000 else 20_000 in
  let t =
    Relstore.Table.create
      (Relstore.Schema.make ~name:"bench_range"
         [
           Relstore.Column.make "day" Relstore.Value.Tint;
           Relstore.Column.make "day_raw" Relstore.Value.Tint;
         ])
  in
  Relstore.Table.add_index t ~name:"by_day" ~columns:[ "day" ];
  for i = 1 to n_rows do
    let d = i mod 100 in
    ignore
      (Relstore.Table.insert_fields t
         [ ("day", Relstore.Value.Int d); ("day_raw", Relstore.Value.Int d) ])
  done;
  let indexed = Relstore.Predicate.Cmp (Relstore.Predicate.Lt, "day", Relstore.Value.Int 3) in
  let scanned = Relstore.Predicate.Cmp (Relstore.Predicate.Lt, "day_raw", Relstore.Value.Int 3) in
  let iters = if quick then 100 else 400 in
  Relstore.Query_exec.set_cache_enabled false;
  let scan_ns =
    time_per_op iters 1 (fun () -> ignore (Relstore.Query_exec.select ~where:scanned t))
  in
  let index_ns =
    time_per_op iters 1 (fun () -> ignore (Relstore.Query_exec.select ~where:indexed t))
  in
  Relstore.Query_exec.set_cache_enabled true;
  [ ("range-strict-full-scan", iters, scan_ns); ("range-strict-index", iters, index_ns) ]

let run_range measured =
  print_endline "== strict-range planner (same selectivity; ns/query) ==\n";
  Provkit_util.Table_fmt.print ~header:[ "path"; "ns/query" ]
    (List.map (fun (name, _, ns) -> [ name; Printf.sprintf "%.0f" ns ]) measured);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: experiment tables                                            *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  print_endline "== paper experiment tables (E1..E16) ==";
  List.iter Harness.Report.print (Harness.Experiments.run_all ~quick ~seed ())

(* ------------------------------------------------------------------ *)
(* Part 3: the BENCH_<date>.json telemetry artifact                     *)
(* ------------------------------------------------------------------ *)

(* Schema "provkit-bench/1".  Every entry of "rows" and "obs_overhead"
   is one JSON object on its own line, so tools/bench_compare.sh can
   diff two artifacts with grep/awk alone:

   { "schema": "provkit-bench/1", "date": "YYYY-MM-DD", "seed": N,
     "quick": bool, "dataset": {"days":N,"nodes":N,"edges":N},
     "rows": [ {"name":"...","iters":N,"ns_per_op":X}, ... ],
     "obs_overhead": [ {"name":"...","off_ns":X,"on_ns":X,"delta_pct":X}, ... ] }

   The default path is BENCH_<iso-date>.json in the working directory;
   BENCH_OUT overrides it (the smoke alias points it at a temp dir). *)

(* Bechamel's OLS estimate can be nan when a run has too few samples
   (quick mode on a loaded machine); 0 keeps the artifact parseable and
   makes bench_compare.sh skip the row rather than divide by nan. *)
let json_num f = if Float.is_nan f then "0" else Printf.sprintf "%.3f" f

let iso_date () =
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

let write_artifact ~micro ~hot ~matview ~stats ~lint ~alert ~daemon ~range ~overhead =
  let ds = Lazy.force dataset in
  let path =
    match Sys.getenv_opt "BENCH_OUT" with
    | Some p -> p
    | None -> Printf.sprintf "BENCH_%s.json" (iso_date ())
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{ \"schema\": \"provkit-bench/1\", \"date\": \"%s\", \"seed\": %d, \"quick\": %b,\n"
       (iso_date ()) seed quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"dataset\": {\"days\":%d,\"nodes\":%d,\"edges\":%d},\n"
       ds.Harness.Dataset.trace.Browser.User_model.span_days
       (Core.Prov_store.node_count (Harness.Dataset.store ds))
       (Core.Prov_store.edge_count (Harness.Dataset.store ds)));
  Buffer.add_string buf "  \"rows\": [\n";
  let all_rows =
    List.map (fun (name, ns) -> (name, micro_iters, ns)) micro
    @ hot @ matview @ stats @ lint @ alert @ daemon @ range
  in
  List.iteri
    (fun i (name, iters, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\":\"%s\",\"iters\":%d,\"ns_per_op\":%s}%s\n"
           (Provkit_obs.Metrics.json_escape name)
           iters (json_num ns)
           (if i + 1 < List.length all_rows then "," else "")))
    all_rows;
  Buffer.add_string buf "  ],\n  \"obs_overhead\": [\n";
  List.iteri
    (fun i (name, off_ns, on_ns) ->
      let delta = if off_ns > 0.0 then 100.0 *. ((on_ns /. off_ns) -. 1.0) else 0.0 in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\":\"%s\",\"off_ns\":%s,\"on_ns\":%s,\"delta_pct\":%.1f}%s\n"
           (Provkit_obs.Metrics.json_escape name)
           (json_num off_ns) (json_num on_ns) delta
           (if i + 1 < List.length overhead then "," else "")))
    overhead;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "bench telemetry -> %s\n" path

let () =
  let json_mode = Array.exists (String.equal "--json") Sys.argv in
  Printf.printf "browser-provenance bench harness (seed %d%s)\n\n" seed
    (if quick then ", quick mode" else "");
  (* Building the dataset first keeps its cost out of the micro runs. *)
  let ds = Lazy.force dataset in
  Printf.printf "dataset: %d days, %d provenance nodes, %d edges\n\n"
    ds.Harness.Dataset.trace.Browser.User_model.span_days
    (Core.Prov_store.node_count (Harness.Dataset.store ds))
    (Core.Prov_store.edge_count (Harness.Dataset.store ds));
  let micro = measure_micro () in
  run_micro micro;
  let hot = measure_hot_paths () in
  run_hot_paths hot;
  let matview = measure_matview () in
  run_matview matview;
  let stats = measure_stats () in
  run_stats stats;
  let lint = measure_lint () in
  run_lint lint;
  let alert = measure_alert () in
  run_alert alert;
  let daemon = measure_daemon () in
  run_daemon daemon;
  let range = measure_range () in
  run_range range;
  let overhead = measure_obs_overhead () in
  run_obs_overhead overhead;
  if json_mode then
    write_artifact ~micro ~hot ~matview ~stats ~lint ~alert ~daemon ~range ~overhead
  else run_experiments ()
