
let () = ignore Obs.Names.used
let () = ignore Obs.Names.unused
let stray = "prov.fixture.stray" [@@provlint.allow "obs-names"]
